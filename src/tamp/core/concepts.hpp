// tamp/core/concepts.hpp
//
// Concepts shared across the library.  The book defines its algorithms
// against small Java interfaces (`Lock`, `Set<T>`, `Queue<T>`, ...); the
// C++20 equivalents below let tests, benchmarks, and examples be written
// once and instantiated over every implementation of a family, which is
// exactly how the book's performance chapters compare algorithms.

#pragma once

#include <concepts>
#include <cstddef>

namespace tamp {

/// A mutual-exclusion lock (the book's `Lock` interface, minus the timed
/// and interruptible extensions that only some implementations support).
template <typename L>
concept BasicLockable = requires(L l) {
    { l.lock() } -> std::same_as<void>;
    { l.unlock() } -> std::same_as<void>;
};

/// A lock supporting non-blocking acquisition attempts.
template <typename L>
concept TryLockable = BasicLockable<L> && requires(L l) {
    { l.try_lock() } -> std::convertible_to<bool>;
};

/// The book's `Set<T>` interface (§9.1): add/remove/contains over values.
template <typename S, typename T = typename S::value_type>
concept ConcurrentSet = requires(S s, const T& v) {
    typename S::value_type;
    { s.add(v) } -> std::convertible_to<bool>;
    { s.remove(v) } -> std::convertible_to<bool>;
    { s.contains(v) } -> std::convertible_to<bool>;
};

/// A FIFO pool with total (possibly failing) enqueue/dequeue, as used by
/// the queue chapters.  `try_dequeue` writes through the out-parameter and
/// reports success, matching C++ container idiom rather than Java's
/// exception-on-empty style.
template <typename Q, typename T = typename Q::value_type>
concept ConcurrentQueue = requires(Q q, T v, T& out) {
    typename Q::value_type;
    { q.enqueue(v) } -> std::same_as<void>;
    { q.try_dequeue(out) } -> std::convertible_to<bool>;
};

/// LIFO analogue for the stack chapter.
template <typename S, typename T = typename S::value_type>
concept ConcurrentStack = requires(S s, T v, T& out) {
    typename S::value_type;
    { s.push(v) } -> std::same_as<void>;
    { s.try_pop(out) } -> std::convertible_to<bool>;
};

/// Shared counter (chapter 12): the only operation the counting structures
/// implement is `getAndIncrement`.
template <typename C>
concept SharedCounter = requires(C c) {
    { c.get_and_increment() } -> std::convertible_to<std::size_t>;
};

/// RAII guard usable with any BasicLockable, including all of tamp's own
/// locks.  `std::lock_guard` requires nothing more, but we re-export the
/// idea under a library name so examples read uniformly.
template <BasicLockable L>
class LockGuard {
  public:
    explicit LockGuard(L& lock) : lock_(lock) { lock_.lock(); }
    ~LockGuard() { lock_.unlock(); }
    LockGuard(const LockGuard&) = delete;
    LockGuard& operator=(const LockGuard&) = delete;

  private:
    L& lock_;
};

}  // namespace tamp
