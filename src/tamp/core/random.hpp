// tamp/core/random.hpp
//
// Small, fast, per-thread pseudo-random number generator.
//
// Lock-free algorithms use randomness on their hot paths (backoff intervals,
// elimination-array slot choice, skiplist level choice, victim selection in
// work stealing).  `std::mt19937` is far too heavy to sit inside a CAS retry
// loop, and sharing one generator would itself be a contention hot spot, so
// the book's practice chapters all assume a cheap thread-local source; we
// use xorshift64*, which passes the statistical bar these uses need.

#pragma once

#include <cstdint>
#include <functional>
#include <thread>

namespace tamp {

/// xorshift64* generator.  Not cryptographic; cheap and stateless enough to
/// embed by value in locks, exchangers, and skiplist handles.
class XorShift64 {
  public:
    explicit constexpr XorShift64(std::uint64_t seed = 0x9E3779B97F4A7C15ull)
        : state_(seed ? seed : 0x9E3779B97F4A7C15ull) {}

    /// Seed from the calling thread's identity so concurrently constructed
    /// generators diverge without coordination.
    static XorShift64 from_this_thread() {
        const auto h =
            std::hash<std::thread::id>{}(std::this_thread::get_id());
        return XorShift64(static_cast<std::uint64_t>(h) ^
                          0xD1B54A32D192ED03ull);
    }

    constexpr std::uint64_t next() noexcept {
        std::uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545F4914F6CDD1Dull;
    }

    /// Uniform draw from [0, bound); returns 0 when bound == 0.
    constexpr std::uint32_t next_below(std::uint32_t bound) noexcept {
        if (bound == 0) return 0;
        // Multiply-shift range reduction (Lemire); bias is negligible for
        // the contention-management uses this generator serves.
        return static_cast<std::uint32_t>(
            (static_cast<std::uint64_t>(static_cast<std::uint32_t>(next())) *
             bound) >>
            32);
    }

    /// Bernoulli(p) draw with p expressed in 1/2^16 units.
    constexpr bool next_bool_with_probability(std::uint32_t p_in_65536) noexcept {
        return (next() & 0xFFFFu) < p_in_65536;
    }

  private:
    std::uint64_t state_;
};

/// The calling thread's persistent generator.  Use this on hot paths that
/// need *fresh* draws on every call (elimination slot choice, composite
/// lock node choice): constructing a seeded generator per call would hand
/// every call the same "random" value.
inline XorShift64& tls_rng() {
    thread_local XorShift64 rng = XorShift64::from_this_thread();
    return rng;
}

}  // namespace tamp
