// tamp/core/cacheline.hpp
//
// Cache-line geometry and padding helpers (Appendix B.6 of Herlihy & Shavit,
// "Cache-Conscious Programming, or the Puzzle Solved").
//
// Almost every algorithm in the book that scales under contention does so by
// arranging for each thread to spin on, or write to, its *own* cache line
// (ALock's padded slot array, CLH/MCS queue nodes, combining-tree nodes,
// counting-network balancers).  This header centralizes that idiom.

#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace tamp {

/// Size, in bytes, of the unit of cache coherence we pad to.
///
/// A fixed 64 rather than `std::hardware_destructive_interference_size`:
/// the standard constant varies with compiler version and -mtune (GCC warns
/// about exactly this), which would make padding part of an unstable ABI.
/// 64 is correct for all contemporary x86-64 parts and most ARM cores; on
/// Apple M-series the destructive-interference line is 128, where this
/// constant still removes the dominant share of false sharing.
inline constexpr std::size_t kCacheLineSize = 64;

/// A value of type `T` padded out to occupy at least one full cache line and
/// aligned to a line boundary, so that two adjacent `Padded<T>` never share
/// a line (no false sharing).
///
/// Used for per-thread slots, per-lock queue nodes, and striped counters.
template <typename T>
struct alignas(kCacheLineSize) Padded {
    T value{};

    Padded() = default;

    template <typename... Args,
              typename = std::enable_if_t<std::is_constructible_v<T, Args...>>>
    explicit Padded(Args&&... args) : value(std::forward<Args>(args)...) {}

    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
};

static_assert(alignof(Padded<int>) == kCacheLineSize);
static_assert(sizeof(Padded<int>) >= kCacheLineSize);

}  // namespace tamp
