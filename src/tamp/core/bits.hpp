// tamp/core/bits.hpp
//
// Bit-manipulation helpers shared by the split-ordered structures
// (tamp/hash, tamp/kv) and the checker models that reason about them
// (tamp/check).  Split ordering sorts one lock-free list by the
// bit-reversed hash, so the reversal must be a single shared definition:
// a structure and the spec that models it have to agree bit-for-bit.

#pragma once

#include <cstdint>

namespace tamp {
namespace detail {

inline std::uint64_t reverse_bits64(std::uint64_t x) {
    x = ((x & 0x5555555555555555ull) << 1) | ((x >> 1) & 0x5555555555555555ull);
    x = ((x & 0x3333333333333333ull) << 2) | ((x >> 2) & 0x3333333333333333ull);
    x = ((x & 0x0F0F0F0F0F0F0F0Full) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0Full);
    x = ((x & 0x00FF00FF00FF00FFull) << 8) | ((x >> 8) & 0x00FF00FF00FF00FFull);
    x = ((x & 0x0000FFFF0000FFFFull) << 16) |
        ((x >> 16) & 0x0000FFFF0000FFFFull);
    return (x << 32) | (x >> 32);
}

/// splitmix64 finalizer: a cheap invertible 64-bit mix (DefaultKeyOf
/// applies the same finalizer to std::hash output; check::KvMapSpec and
/// the kv workload use it for digests and per-thread seed derivation).
inline std::uint64_t mix64(std::uint64_t x) {
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

/// Split-order key of an ordinary (data) node: bit-reversed hash with the
/// low bit forced on, so it sorts strictly after its bucket's sentinel.
inline std::uint64_t split_ordinary_key(std::uint64_t hash) {
    return reverse_bits64(hash) | 1ull;
}

/// Split-order key of bucket b's sentinel node (even — before every
/// ordinary key that hashes into b).
inline std::uint64_t split_sentinel_key(std::uint64_t bucket) {
    return reverse_bits64(bucket);
}

}  // namespace detail
}  // namespace tamp
