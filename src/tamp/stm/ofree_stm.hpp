// tamp/stm/ofree_stm.hpp
//
// The *obstruction-free* STM of §18.3 (DSTM-style "FreeObject"/Locator),
// the chapter's second design point beside the lock-based TL2 of stm.hpp.
//
// Every transactional object holds one atomic pointer to a Locator:
//
//     Locator { owner transaction, new version, old version }
//
// The object's logical value is decided by the owner's status: COMMITTED
// ⇒ new version, ABORTED/ACTIVE ⇒ old version.  A writer *opens* the
// object by installing (CAS) a fresh locator whose old version is the
// owner-status-resolved current one; committing is then a single CAS of
// the transaction's status word ACTIVE → COMMITTED — which atomically
// flips the meaning of every locator the transaction installed.  Nothing
// ever blocks: a writer that finds an ACTIVE owner in its way aborts it
// (CAS ACTIVE → ABORTED) — the aggressive contention-management policy —
// and o_atomically() backs off between attempts (the polite half).
//
// Reads are invisible: read = resolve the locator chain and remember
// (object, locator, box); every subsequent read re-validates the whole
// read set (the value a locator denotes changes when its owner commits,
// so both the locator pointer *and* the resolved box are checked) — this
// per-read validation is what gives user code a consistent view at every
// point, not just at commit (the "zombie transaction" problem).
//
// Reclamation: displaced locator shells and dead version boxes are
// epoch-retired with typed deleters; a transaction attempt is pinned for
// its whole lifetime, so its read-your-writes boxes stay valid even if a
// rival aborts it and displaces its locators.

#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/events.hpp"
#include "tamp/obs/timer.hpp"
#include "tamp/obs/trace.hpp"
#include "tamp/reclaim/domain.hpp"
#include "tamp/stm/stm.hpp"  // TxAbort

namespace tamp {

enum class OTxStatus : int { kActive, kCommitted, kAborted };

/// Shared status word of one transaction attempt.
struct OTxDescriptor {
    std::atomic<OTxStatus> status{OTxStatus::kActive};

    bool try_commit() {
        OTxStatus expected = OTxStatus::kActive;
        return status.compare_exchange_strong(expected,
                                              OTxStatus::kCommitted,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire);
    }
    void abort() {
        OTxStatus expected = OTxStatus::kActive;
        status.compare_exchange_strong(expected, OTxStatus::kAborted,
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
    }
};

namespace detail {

struct OLocator {
    std::shared_ptr<OTxDescriptor> owner;
    void* new_version = nullptr;
    void* old_version = nullptr;
    void (*box_deleter)(void*) = nullptr;  // typed delete for the boxes

    /// The box this locator currently denotes.
    const void* resolve() const {
        return owner->status.load(std::memory_order_acquire) ==
                       OTxStatus::kCommitted
                   ? new_version
                   : old_version;
    }
};

struct OFreeVarBase {
    std::atomic<OLocator*> locator{nullptr};
};

}  // namespace detail

/// An obstruction-free transactional variable.
template <typename T>
class OFreeTVar : private detail::OFreeVarBase {
    struct Box {
        T value;
    };

  public:
    explicit OFreeTVar(T init = T{}) {
        auto* loc = new detail::OLocator();
        loc->owner = committed_sentinel();
        loc->new_version = new Box{std::move(init)};
        loc->old_version = nullptr;
        loc->box_deleter = &delete_box;
        this->locator.store(loc, std::memory_order_release);
    }

    ~OFreeTVar() {
        auto* loc = this->locator.load(std::memory_order_relaxed);
        delete_box(loc->new_version);
        delete_box(loc->old_version);
        delete loc;
    }

    OFreeTVar(const OFreeTVar&) = delete;
    OFreeTVar& operator=(const OFreeTVar&) = delete;

    /// Quiescent read (no transaction).
    T unsafe_read() const {
        reclaim::ebr::guard g;
        const detail::OLocator* loc =
            this->locator.load(std::memory_order_acquire);
        return static_cast<const Box*>(loc->resolve())->value;
    }

    detail::OFreeVarBase* base() { return this; }

  private:
    friend class OFreeTransaction;

    static void delete_box(void* p) { delete static_cast<Box*>(p); }

    static std::shared_ptr<OTxDescriptor> committed_sentinel() {
        static std::shared_ptr<OTxDescriptor> s = [] {
            auto d = std::make_shared<OTxDescriptor>();
            d->status.store(OTxStatus::kCommitted,
                            std::memory_order_relaxed);
            return d;
        }();
        return s;
    }
};

/// One attempt; created by o_atomically().
class OFreeTransaction {
  public:
    explicit OFreeTransaction(std::shared_ptr<OTxDescriptor> self)
        : self_(std::move(self)) {}

    template <typename T>
    T read(OFreeTVar<T>& var) {
        using Box = typename OFreeTVar<T>::Box;
        auto* base = var.base();
        if (auto it = written_.find(base); it != written_.end()) {
            return static_cast<Box*>(it->second->new_version)->value;
        }
        detail::OLocator* loc =
            base->locator.load(std::memory_order_acquire);
        const void* box = loc->resolve();
        validate();  // all earlier reads must still hold: opacity
        reads_.push_back({base, loc, box});
        return static_cast<const Box*>(box)->value;
    }

    template <typename T>
    void write(OFreeTVar<T>& var, std::type_identity_t<T> value) {
        using Box = typename OFreeTVar<T>::Box;
        auto* base = var.base();
        if (auto it = written_.find(base); it != written_.end()) {
            static_cast<Box*>(it->second->new_version)->value =
                std::move(value);
            return;
        }
        // Open for write: install a locator owned by us whose old version
        // is the current (owner-resolved) box.
        while (true) {
            detail::OLocator* old_loc =
                base->locator.load(std::memory_order_acquire);
            const OTxStatus owner_status =
                old_loc->owner->status.load(std::memory_order_acquire);
            if (owner_status == OTxStatus::kActive &&
                old_loc->owner.get() != self_.get()) {
                // Contention: abort the rival (aggressive manager), then
                // re-resolve against its now-terminal status.
                old_loc->owner->abort();
                continue;
            }
            void* current = const_cast<void*>(old_loc->resolve());
            auto* fresh = new detail::OLocator();
            fresh->owner = self_;
            fresh->old_version = current;
            fresh->new_version = new Box{value};
            fresh->box_deleter = old_loc->box_deleter;
            if (base->locator.compare_exchange_weak(
                    old_loc, fresh, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                written_[base] = fresh;
                retire_displaced(old_loc, current);
                validate();  // our reads must still hold
                return;
            }
            old_loc->box_deleter(fresh->new_version);
            delete fresh;  // lost the install race: retry
        }
    }

    /// Final validation + the one-CAS commit.
    bool commit() {
        for (const auto& entry : reads_) {
            if (!still_valid(entry)) {
                self_->abort();
                obs::counter<obs::ev::stm_aborts_version>::inc();
                obs::record_since<obs::ev::stm_abort_version_ns>(
                    start_ticks_);
                obs::trace(obs::trace_ev::kStmAbort, 2);
                return false;
            }
        }
        if (self_->try_commit()) {
            obs::counter<obs::ev::stm_commits>::inc();
            obs::record_since<obs::ev::stm_commit_ns>(start_ticks_);
            return true;
        }
        // The status CAS lost: a rival's aggressive contention manager
        // aborted us while we were validating.
        obs::counter<obs::ev::stm_aborts_rival>::inc();
        obs::record_since<obs::ev::stm_abort_rival_ns>(start_ticks_);
        obs::trace(obs::trace_ev::kStmAbort, 3);
        return false;
    }

    OTxStatus status() const {
        return self_->status.load(std::memory_order_acquire);
    }

    std::size_t read_set_size() const { return reads_.size(); }
    std::size_t write_set_size() const { return written_.size(); }

  private:
    struct ReadEntry {
        detail::OFreeVarBase* base;
        detail::OLocator* locator;
        const void* box;  // value identity at read time
    };

    bool still_valid(const ReadEntry& e) const {
        if (written_.count(e.base) != 0) {
            // We opened it after reading: our locator's old version must
            // be the box we read (we built it from the then-current box).
            auto it = written_.find(e.base);
            return it->second->old_version == e.box;
        }
        detail::OLocator* now =
            e.base->locator.load(std::memory_order_acquire);
        return now == e.locator && now->resolve() == e.box;
    }

    void validate() const {
        for (const auto& entry : reads_) {
            if (!still_valid(entry)) {
                obs::counter<obs::ev::stm_aborts_validation>::inc();
                obs::record_since<obs::ev::stm_abort_validation_ns>(
                    start_ticks_);
                obs::trace(obs::trace_ev::kStmAbort, 0);
                throw TxAbort{};
            }
        }
    }

    static void retire_displaced(detail::OLocator* loc,
                                 void* surviving_box) {
        // Of the shell's two boxes, one lives on inside the new locator;
        // the other belonged to an aborted/superseded lineage.
        void* dead = loc->new_version == surviving_box ? loc->old_version
                                                       : loc->new_version;
        if (dead != nullptr) {
            EpochDomain::global().retire(dead, loc->box_deleter);
        }
        reclaim::ebr::retire(loc);
    }

    std::shared_ptr<OTxDescriptor> self_;
    // Attempt birth timestamp for commit/abort-latency attribution;
    // constant 0 in stats-off builds.
    std::uint64_t start_ticks_ = obs::tick<>();
    std::vector<ReadEntry> reads_;
    std::map<detail::OFreeVarBase*, detail::OLocator*> written_;
};

/// Run `fn(tx)` under the obstruction-free STM until it commits.
template <typename Fn>
auto o_atomically(Fn&& fn) {
    Backoff backoff(32, 16384);
    while (true) {
        auto desc = std::make_shared<OTxDescriptor>();
        OFreeTransaction tx(desc);
        reclaim::ebr::guard guard;  // pin the whole attempt (see header comment)
        try {
            if constexpr (std::is_void_v<decltype(fn(tx))>) {
                fn(tx);
                if (tx.commit()) return;
            } else {
                auto result = fn(tx);
                if (tx.commit()) return result;
            }
        } catch (const TxAbort&) {
            desc->abort();
        }
        backoff.backoff();  // aborted: retreat before retrying
    }
}

}  // namespace tamp
