// tamp/stm/stm.hpp
//
// Software transactional memory (Chapter 18): a word-based, lazy
// (commit-time locking) STM in the TL2 style — the design the chapter's
// TinyTM/LockObject discussion builds toward:
//
//  * a global version clock;
//  * one versioned write-lock per transactional variable;
//  * read: sample the lock, read the value, re-sample — consistent and no
//    older than the transaction's birth version, or abort;
//  * commit: lock the write set (address order, so deadlock-free), bump
//    the clock, validate the read set, publish, unlock with the new
//    version.
//
// Aborts are signalled by TxAbort and retried by atomically() with
// exponential backoff — a simple contention manager (§18.3.1's
// "backoff manager").
//
// TVar<T> requires a trivially copyable T that fits a machine word: the
// value lives in a std::atomic so that the read protocol is physically
// race-free (the versioned lock makes it *logically* consistent).
//
// The chapter's own evaluation contrasts the STM against a single global
// lock — GlobalLockSTM below, with the same interface, is that baseline
// for `bench_stm`.

#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>
#include <type_traits>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/events.hpp"
#include "tamp/obs/timer.hpp"
#include "tamp/obs/trace.hpp"

namespace tamp {

/// Thrown internally on conflict; caught by atomically().  User code
/// inside a transaction must let it propagate.
struct TxAbort {};

/// The global version clock (TL2's GV).
class TxClock {
  public:
    static std::uint64_t now() {
        return clock_.load(std::memory_order_acquire);
    }
    static std::uint64_t advance() {
        return clock_.fetch_add(1, std::memory_order_acq_rel) + 1;
    }

  private:
    inline static std::atomic<std::uint64_t> clock_{0};
};

/// A versioned write-lock: (version << 1) | locked, in one word.
class VersionedLock {
  public:
    bool try_lock() {
        std::uint64_t w = word_.load(std::memory_order_acquire);
        if (w & 1u) return false;
        return word_.compare_exchange_strong(w, w | 1u,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire);
    }

    void unlock_with_version(std::uint64_t version) {
        word_.store(version << 1, std::memory_order_release);
    }

    void unlock_restore(std::uint64_t sampled_word) {
        word_.store(sampled_word, std::memory_order_release);
    }

    std::uint64_t sample() const {
        return word_.load(std::memory_order_acquire);
    }

    VersionedLock() = default;
    // Setup-time only (container population before sharing); NOT safe
    // while any transaction can touch either object.
    VersionedLock(VersionedLock&& other) noexcept
        : word_(other.word_.load(std::memory_order_relaxed)) {}

    static bool is_locked(std::uint64_t sampled) { return (sampled & 1u) != 0; }
    static std::uint64_t version_of(std::uint64_t sampled) {
        return sampled >> 1;
    }

  private:
    std::atomic<std::uint64_t> word_{0};
};

namespace detail {
struct TVarBase {
    VersionedLock lock;
    std::atomic<std::uint64_t> raw{0};

    TVarBase() = default;
    // Setup-time only (see VersionedLock's move constructor).
    TVarBase(TVarBase&& other) noexcept
        : lock(std::move(other.lock)),
          raw(other.raw.load(std::memory_order_relaxed)) {}
};
}  // namespace detail

/// A transactional variable.
template <typename T>
class TVar : private detail::TVarBase {
    static_assert(std::is_trivially_copyable_v<T> &&
                      sizeof(T) <= sizeof(std::uint64_t),
                  "TVar values must fit a machine word");

  public:
    TVar() { this->raw.store(encode(T{}), std::memory_order_relaxed); }
    explicit TVar(T init) {
        this->raw.store(encode(init), std::memory_order_relaxed);
    }
    TVar(TVar&&) = default;  // setup-time only

    /// Non-transactional read — only meaningful when quiescent.
    T unsafe_read() const {
        return decode(this->raw.load(std::memory_order_acquire));
    }

    static std::uint64_t encode(T v) {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(T));
        return bits;
    }
    static T decode(std::uint64_t bits) {
        T v;
        std::memcpy(&v, &bits, sizeof(T));
        return v;
    }

    detail::TVarBase* base() { return this; }
    const detail::TVarBase* base() const { return this; }

  private:
    friend class Transaction;
};

class Transaction {
  public:
    explicit Transaction(std::uint64_t read_version) : rv_(read_version) {}

    template <typename T>
    T read(const TVar<T>& var) {
        auto* base = const_cast<detail::TVarBase*>(var.base());
        // Our own pending write wins (read-your-writes).
        if (auto it = writes_.find(base); it != writes_.end()) {
            return TVar<T>::decode(it->second);
        }
        const std::uint64_t pre = base->lock.sample();
        const std::uint64_t bits =
            base->raw.load(std::memory_order_acquire);
        const std::uint64_t post = base->lock.sample();
        // Consistent, unlocked, and no newer than our birth version.
        if (pre != post || VersionedLock::is_locked(pre) ||
            VersionedLock::version_of(pre) > rv_) {
            obs::counter<obs::ev::stm_aborts_validation>::inc();
            obs::record_since<obs::ev::stm_abort_validation_ns>(start_ticks_);
            obs::trace(obs::trace_ev::kStmAbort, 0);
            throw TxAbort{};
        }
        reads_.push_back(base);
        return TVar<T>::decode(bits);
    }

    template <typename T>
    void write(TVar<T>& var, std::type_identity_t<T> value) {
        writes_[var.base()] = TVar<T>::encode(value);
    }

    /// Commit-time locking and validation (TL2).  True on success.
    bool commit() {
        if (writes_.empty()) {
            // Read-only fast path: reads were each validated against rv_
            // at read time; nothing to publish.
            obs::counter<obs::ev::stm_commits>::inc();
            obs::record_since<obs::ev::stm_commit_ns>(start_ticks_);
            return true;
        }
        // Phase 1: lock the write set.  std::map iterates in address
        // order — a global order, so concurrent commits cannot deadlock;
        // a held lock means a conflict, so abort rather than wait.
        std::vector<detail::TVarBase*> locked;
        locked.reserve(writes_.size());
        for (auto& [base, bits] : writes_) {
            (void)bits;
            if (!base->lock.try_lock()) {
                for (auto* l : locked) {
                    l->lock.unlock_with_version(
                        VersionedLock::version_of(l->lock.sample()));
                }
                obs::counter<obs::ev::stm_aborts_lock>::inc();
                obs::record_since<obs::ev::stm_abort_lock_ns>(start_ticks_);
                obs::trace(obs::trace_ev::kStmAbort, 1);
                return false;
            }
            locked.push_back(base);
        }
        // Phase 2: advance the clock.
        const std::uint64_t wv = TxClock::advance();
        // Phase 3: validate the read set (skip if rv_+1 == wv: nobody
        // else committed since we started — the TL2 fast path).
        if (rv_ + 1 != wv) {
            for (detail::TVarBase* base : reads_) {
                const std::uint64_t s = base->lock.sample();
                const bool locked_by_us = writes_.count(base) != 0;
                if ((VersionedLock::is_locked(s) && !locked_by_us) ||
                    VersionedLock::version_of(s) > rv_) {
                    for (auto* l : locked) {
                        l->lock.unlock_with_version(
                            VersionedLock::version_of(l->lock.sample()));
                    }
                    obs::counter<obs::ev::stm_aborts_version>::inc();
                    obs::record_since<obs::ev::stm_abort_version_ns>(
                        start_ticks_);
                    obs::trace(obs::trace_ev::kStmAbort, 2);
                    return false;
                }
            }
        }
        // Phase 4: publish and release with the new version.
        for (auto& [base, bits] : writes_) {
            base->raw.store(bits, std::memory_order_release);
            base->lock.unlock_with_version(wv);
        }
        obs::counter<obs::ev::stm_commits>::inc();
        obs::record_since<obs::ev::stm_commit_ns>(start_ticks_);
        return true;
    }

    std::size_t read_set_size() const { return reads_.size(); }
    std::size_t write_set_size() const { return writes_.size(); }

  private:
    std::uint64_t rv_;
    // Birth timestamp for commit/abort-latency attribution; constant 0 in
    // stats-off builds (obs::tick() is a constexpr no-op there).
    std::uint64_t start_ticks_ = obs::tick<>();
    std::vector<detail::TVarBase*> reads_;
    std::map<detail::TVarBase*, std::uint64_t> writes_;
};

/// Run `fn(tx)` transactionally until it commits; returns fn's result.
/// `fn` may be re-executed — it must be pure apart from tx reads/writes.
template <typename Fn>
auto atomically(Fn&& fn) {
    Backoff backoff(16, 8192);
    while (true) {
        Transaction tx(TxClock::now());
        try {
            if constexpr (std::is_void_v<decltype(fn(tx))>) {
                fn(tx);
                if (tx.commit()) return;
            } else {
                auto result = fn(tx);
                if (tx.commit()) return result;
            }
        } catch (const TxAbort&) {
            // fall through to retry
        }
        backoff.backoff();  // contention manager: exponential backoff
    }
}

/// The chapter's baseline: "just take one big lock".  Same shape as
/// atomically(), so benchmarks and examples can swap implementations.
class GlobalLockSTM {
  public:
    template <typename Fn>
    static auto atomically(Fn&& fn) {
        std::lock_guard<std::mutex> g(mu());
        DirectTx tx;
        return fn(tx);
    }

    /// Direct read/write view used under the global lock.
    struct DirectTx {
        template <typename T>
        T read(const TVar<T>& var) {
            return var.unsafe_read();
        }
        template <typename T>
        void write(TVar<T>& var, T value) {
            auto* base = var.base();
            base->raw.store(TVar<T>::encode(value),
                            std::memory_order_release);
        }
    };

  private:
    static std::mutex& mu() {
        static std::mutex m;
        return m;
    }
};

}  // namespace tamp
