// tamp/mutex/tournament.hpp
//
// Tournament (tree) lock: n-thread mutual exclusion built from a complete
// binary tree of two-thread Peterson locks (Chapter 2 exercises; also the
// structure underlying the Peterson–Fischer generalization).
//
// Thread i enters at leaf position i/2, playing side i%2, and climbs to the
// root acquiring each Peterson lock on the way; release walks root-to-leaf.
// Lock depth is ceil(log2 n), so acquisition cost grows logarithmically
// where the Filter lock's grows linearly — the comparison `bench_mutex`
// measures.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/mutex/peterson.hpp"

namespace tamp {

class TournamentLock {
  public:
    // A complete binary tree with `leaves_` leaf locks has 2*leaves_-1
    // nodes, stored heap-style: node k has parent (k-1)/2, root is 0.
    explicit TournamentLock(std::size_t n)
        : capacity_(n), leaves_(leaves_for(n)), nodes_(2 * leaves_ - 1) {
        assert(n >= 1);
    }

    void lock(std::size_t me) {
        assert(me < capacity_);
        std::size_t node = leaf_for(me);
        std::size_t side = me % 2;
        while (true) {
            nodes_[node].value.lock(side);
            if (node == 0) break;
            side = (node - 1) % 2;  // which child of the parent we are
            node = (node - 1) / 2;
        }
    }

    void unlock(std::size_t me) {
        assert(me < capacity_);
        // Release top-down along the same path the acquisition climbed.
        std::size_t path[64];
        std::size_t depth = 0;
        std::size_t node = leaf_for(me);
        path[depth++] = node;
        while (node != 0) {
            node = (node - 1) / 2;
            path[depth++] = node;
        }
        for (std::size_t i = depth; i-- > 0;) {
            const std::size_t n = path[i];
            const std::size_t side =
                (n == leaf_for(me)) ? me % 2 : (child_on_path(path, i)) % 2;
            nodes_[n].value.unlock(side);
        }
    }

    std::size_t capacity() const { return capacity_; }

  private:
    std::size_t leaf_for(std::size_t me) const {
        return (leaves_ - 1) + (me / 2) % leaves_;
    }
    // For an internal node path[i], the child we arrived from is path[i-1];
    // its side is determined by its index parity (child k of parent p is
    // 2p+1 or 2p+2; side = (k-1)%2).
    static std::size_t child_on_path(const std::size_t* path, std::size_t i) {
        return path[i - 1] - 1;
    }

    // leaves_ = 2^ceil(log2 n)/2
    static std::size_t leaves_for(std::size_t n) {
        std::size_t leaves = 1;
        while (leaves * 2 < n) leaves *= 2;
        return leaves;
    }

    const std::size_t capacity_;
    const std::size_t leaves_;
    std::vector<Padded<PetersonLock>> nodes_;
};

}  // namespace tamp
