// tamp/mutex/bakery.hpp
//
// Lamport's Bakery lock (Fig. 2.9).  First-come-first-served mutual
// exclusion for n threads from reads and writes alone: a thread takes a
// "ticket" one greater than the maximum it can see, then waits until no
// interested thread holds a lexicographically smaller (label, id) pair.
//
// Labels grow without bound; we use 64-bit counters, which at one
// acquisition per nanosecond would take five centuries to wrap — the
// practical form of the book's "unbounded timestamps" assumption (§2.7
// discusses how labels could be bounded at the cost of much machinery).

#pragma once

#include <atomic>

#include "tamp/core/backoff.hpp"
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/sim/atomic.hpp"
#include "tamp/sim/hooks.hpp"

namespace tamp {

class BakeryLock {
  public:
    explicit BakeryLock(std::size_t n) : n_(n), flag_(n), label_(n) {
        assert(n >= 1);
        for (auto& f : flag_) f.value.store(false);
        for (auto& l : label_) l.value.store(0);
    }

    void lock(std::size_t me) {
        sim::op_scope op("BakeryLock::lock");
        assert(me < n_);
        flag_[me].value.store(true);
        label_[me].value.store(max_label() + 1);
        // Wait while any other interested thread has an earlier ticket.
        for (std::size_t k = 0; k < n_; ++k) {
            if (k == me) continue;
            SpinWait w;
            while (flag_[k].value.load() && lex_less(k, me)) w.spin();
        }
    }

    void unlock(std::size_t me) {
        assert(me < n_);
        flag_[me].value.store(false);
    }

    std::size_t capacity() const { return n_; }

  private:
    std::uint64_t max_label() const {
        std::uint64_t m = 0;
        for (std::size_t k = 0; k < n_; ++k) {
            const std::uint64_t l = label_[k].value.load();
            if (l > m) m = l;
        }
        return m;
    }

    // (label[k], k) < (label[me], me) in lexicographic order.
    bool lex_less(std::size_t k, std::size_t me) const {
        const std::uint64_t lk = label_[k].value.load();
        const std::uint64_t lme = label_[me].value.load();
        return lk < lme || (lk == lme && k < me);
    }

    const std::size_t n_;
    std::vector<Padded<tamp::atomic<bool>>> flag_;
    std::vector<Padded<tamp::atomic<std::uint64_t>>> label_;
};

}  // namespace tamp
