// tamp/mutex/mutex.hpp — umbrella header for the Chapter 2 classic
// mutual-exclusion algorithms (read/write registers only, explicit slots).
#pragma once

#include "tamp/mutex/bakery.hpp"
#include "tamp/mutex/filter.hpp"
#include "tamp/mutex/peterson.hpp"
#include "tamp/mutex/tournament.hpp"
