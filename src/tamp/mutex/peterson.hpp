// tamp/mutex/peterson.hpp
//
// Chapter 2 two-thread locks: LockOne, LockTwo (Figs. 2.3, 2.4 — the two
// deliberately flawed stepping stones) and the Peterson lock (Fig. 2.6),
// which combines them into the classic correct two-thread mutual-exclusion
// algorithm.
//
// All loads and stores are seq_cst: the book's proofs are stated in a
// sequentially consistent model, and on relaxed hardware Peterson's
// algorithm is famously broken without the store→load fence that seq_cst
// provides (the flag write must be visible before the victim/flag reads).

#pragma once

#include <atomic>

#include "tamp/core/backoff.hpp"
#include "tamp/sim/atomic.hpp"
#include "tamp/sim/hooks.hpp"
#include <cassert>
#include <cstddef>

namespace tamp {

/// LockOne (Fig. 2.3).  Satisfies mutual exclusion but deadlocks when the
/// two threads interleave their lock() calls.  Kept for pedagogy and for
/// the tests that demonstrate exactly that property; do not use.
class LockOne {
  public:
    void lock(std::size_t me) {
        assert(me < 2);
        flag_[me].store(true);
        SpinWait w;
        while (flag_[1 - me].load()) w.spin();
    }
    void unlock(std::size_t me) {
        assert(me < 2);
        flag_[me].store(false);
    }

    /// True when the other thread has announced interest — the condition
    /// under which a LockOne acquisition would hang.  Exposed so tests can
    /// probe the deadlock scenario without actually deadlocking.
    bool would_block(std::size_t me) const {
        return flag_[1 - me].load();
    }

  private:
    tamp::atomic<bool> flag_[2] = {false, false};
};

/// LockTwo (Fig. 2.4).  Complements LockOne: works only when lock() calls
/// interleave, deadlocks when one thread runs alone.  Pedagogical.
class LockTwo {
  public:
    void lock(std::size_t me) {
        assert(me < 2);
        victim_.store(me);
        SpinWait w;
        while (victim_.load() == static_cast<int>(me)) w.spin();
    }
    void unlock(std::size_t) {}

    /// The lone-thread deadlock condition, probe-able without hanging.
    bool would_block(std::size_t me) const {
        return victim_.load() == static_cast<int>(me);
    }

    /// Test hook: perform only the doorway write of a lock() call by
    /// `me`, without waiting.  LockTwo makes progress *only* when another
    /// thread keeps arriving; this lets a test play that other thread and
    /// release a stuck waiter without itself getting stuck.
    void simulate_arrival(std::size_t me) {
        assert(me < 2);
        victim_.store(static_cast<int>(me));
    }

  private:
    tamp::atomic<int> victim_{-1};
};

/// The Peterson lock (Fig. 2.6).  Starvation-free two-thread mutual
/// exclusion from reads and writes alone.
class PetersonLock {
  public:
    void lock(std::size_t me) {
        sim::op_scope op("PetersonLock::lock");
        assert(me < 2);
        const std::size_t other = 1 - me;
        flag_[me].store(true);   // I'm interested
        victim_.store(me);       // you go first
        // Wait while the other thread is interested and I am the victim.
        SpinWait w;
        while (flag_[other].load() && victim_.load() == static_cast<int>(me)) {
            w.spin();
        }
    }

    void unlock(std::size_t me) {
        assert(me < 2);
        flag_[me].store(false);
    }

  private:
    // Unpadded on purpose, faithful to Fig. 2.6: two threads by
    // construction, and the lock/unlock protocol touches flag_ and
    // victim_ together anyway.
    tamp::atomic<bool> flag_[2] = {false, false};
    // tamp-lint: allow(atomic-align)
    tamp::atomic<int> victim_{-1};
};

}  // namespace tamp
