// tamp/mutex/filter.hpp
//
// The Filter lock (Fig. 2.7): Peterson's algorithm generalized to n threads
// through n-1 waiting levels, each of which "filters out" one thread.
//
// Starvation-free (though not first-come-first-served); uses only reads and
// writes.  Like Peterson, correctness depends on sequential consistency, so
// every access is seq_cst.

#pragma once

#include <atomic>

#include "tamp/core/backoff.hpp"
#include <cassert>
#include <cstddef>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/sim/atomic.hpp"

namespace tamp {

class FilterLock {
  public:
    /// A lock for threads with ids (slots) in [0, n).
    explicit FilterLock(std::size_t n) : n_(n), level_(n), victim_(n) {
        assert(n >= 1);
        for (auto& l : level_) l.value.store(0);
        for (auto& v : victim_) v.value.store(0);
    }

    void lock(std::size_t me) {
        assert(me < n_);
        for (std::size_t i = 1; i < n_; ++i) {  // attempt to enter level i
            level_[me].value.store(static_cast<int>(i));
            victim_[i].value.store(static_cast<int>(me));
            // Spin while a conflict exists: someone else is at my level or
            // higher, and I am still the level's victim.
            SpinWait w;
            while (victim_[i].value.load() == static_cast<int>(me) &&
                   someone_at_or_above(i, me)) {
                w.spin();
            }
        }
    }

    void unlock(std::size_t me) {
        assert(me < n_);
        level_[me].value.store(0);
    }

    std::size_t capacity() const { return n_; }

  private:
    bool someone_at_or_above(std::size_t i, std::size_t me) const {
        for (std::size_t k = 0; k < n_; ++k) {
            if (k != me &&
                level_[k].value.load() >= static_cast<int>(i)) {
                return true;
            }
        }
        return false;
    }

    const std::size_t n_;
    // Padded: each thread writes its own level slot on every acquisition;
    // sharing lines would serialize unrelated threads through the coherence
    // protocol (the false-sharing trap of Appendix B.6).
    std::vector<Padded<tamp::atomic<int>>> level_;
    std::vector<Padded<tamp::atomic<int>>> victim_;
};

}  // namespace tamp
