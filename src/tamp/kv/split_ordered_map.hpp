// tamp/kv/split_ordered_map.hpp
//
// SplitOrderedMap — the key→value half of recursive split-ordering
// (Shalev & Shavit; §13.3, Figs. 13.13–13.18), built for the KV service:
// all entries live in one Harris–Michael list sorted by bit-reversed
// hash, buckets are lazily-installed sentinel nodes pointing into it,
// and doubling the table only adds sentinels — a node, once linked, is
// never moved.  Differences from the set in tamp/hash/split_ordered.hpp:
//
//   * map interface — nodes carry an immutable key plus a
//     `tamp::atomic<V>` value updated in place, so a put on an existing
//     key is one store, not a remove+insert;
//   * doubling bucket directory — segment s holds 2^(s+3) buckets
//     (segment 0 holds 16), so growing 2^4 → 2^31 buckets costs 28
//     directory slots instead of a flat 2^24-bounded array;
//   * linearizable scans — a packed writers/completed gate (see below)
//     turns the classic non-atomic traversal into an atomic snapshot;
//   * sim/facade clean — every shared word goes through `tamp::atomic`
//     so the model checker can explore the publish protocol.
//
// Scan gate.  `gate_` packs two fields into one word: the low
// kWriterBits count mutators currently between their decision to
// mutate and the completion of that attempt ("writers in flight"); the
// high bits count completed mutation attempts.  Every linearizing step
// of a mutation — the insert's link CAS, the remove's mark CAS, the
// update's in-place store — is bracketed by gate_enter()/gate_exit().
// A scan loads the gate (s1), re-loads it after one full collect (s2),
// and is atomic iff the writer field was zero at s1 and s1 == s2:
//
//   * a mutator in flight at s1 or s2 makes the writer field non-zero;
//   * a mutator that entered and exited between them bumps the
//     completed field — s1 != s2;
//
// so an s1 == s2 collect overlapped no mutation and is a snapshot at
// s1's position in the seq_cst order.  (A plain double-collect without
// the gate is *not* linearizable: an insert+remove pair landing in the
// already-traversed gap leaves both collects equal yet neither matches
// any single instant.)  Sentinel installs and marked-node snips are
// logical no-ops and skip the gate.  Scans are obstruction-free — they
// starve only while writers keep arriving, and each retry is counted in
// `tamp.kv.scan_retries` so a tail-latency sample can be attributed.

#pragma once

#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <type_traits>
#include <utility>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/core/bits.hpp"
#include "tamp/core/cacheline.hpp"
#include "tamp/core/marked_ptr.hpp"
#include "tamp/lists/keyed.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/events.hpp"
#include "tamp/reclaim/domain.hpp"
#include "tamp/sim/atomic.hpp"
#include "tamp/sim/hooks.hpp"

namespace tamp::kv {

template <std::totally_ordered K, typename V,
          typename KeyOf = DefaultKeyOf<K>,
          reclaim::domain Domain = reclaim::ebr>
class SplitOrderedMap {
    static_assert(!Domain::kProtects,
                  "SplitOrderedMap's recursive-split traversals publish "
                  "no per-pointer protection; use a grace-period domain "
                  "(ebr/qsbr)");
    static_assert(std::is_trivially_copyable_v<V>,
                  "values are updated in place through tamp::atomic<V>");

    struct Node {
        const std::uint64_t so_key;  // split-order key; even = sentinel
        const K key;                 // tie-break for same-hash keys
        tamp::atomic<V> value;       // updated in place by put
        AtomicMarkedPtr<Node> next;

        Node(std::uint64_t so, K k, V v)
            : so_key(so), key(std::move(k)), value(v) {}
    };

    // Doubling directory: segment 0 holds 2^kSegment0Bits buckets and
    // each later segment doubles the table, so segment s >= 1 holds
    // segment_base(s) == 2^(kSegment0Bits + s - 1) buckets.  28 slots
    // reach 2^31 buckets — "growth from thousands to millions of keys"
    // costs 28 pointers, installed by CAS and never replaced.
    static constexpr std::size_t kSegment0Bits = 4;
    static constexpr std::size_t kMaxSegments = 28;
    static constexpr std::size_t kMaxBuckets = std::size_t{1}
                                               << (kSegment0Bits +
                                                   kMaxSegments - 1);

    // Scan gate field layout (see header comment).
    static constexpr std::uint64_t kWriterBits = 20;
    static constexpr std::uint64_t kWriterMask =
        (std::uint64_t{1} << kWriterBits) - 1;
    static constexpr std::uint64_t kDoneInc = std::uint64_t{1}
                                              << kWriterBits;

  public:
    using key_type = K;
    using mapped_type = V;
    using reclaim_domain = Domain;

    explicit SplitOrderedMap(std::size_t initial_buckets = 16,
                             std::size_t max_load = 4)
        : max_load_(max_load), head_(new Node(0, K{}, V{})) {
        std::size_t b = 1u << kSegment0Bits;
        while (b < initial_buckets && b < kMaxBuckets) b *= 2;
        bucket_count_.store(b, std::memory_order_relaxed);
        for (auto& s : segments_) {
            s.store(nullptr, std::memory_order_relaxed);
        }
        head_->next.store(nullptr, false);
        // Bucket 0's sentinel is the recursion's base case — eager.
        bucket_ref(0).store(head_, std::memory_order_release);
    }

    ~SplitOrderedMap() {
        Node* n = head_;
        while (n != nullptr) {
            Node* next = n->next.load(std::memory_order_relaxed).ptr();
            delete n;
            n = next;
        }
        for (auto& s : segments_) {
            delete[] s.load(std::memory_order_relaxed);
        }
    }

    SplitOrderedMap(const SplitOrderedMap&) = delete;
    SplitOrderedMap& operator=(const SplitOrderedMap&) = delete;

    /// Insert-or-update.  Returns true when k was inserted, false when
    /// an existing entry was updated in place.
    bool put(const K& k, const V& v) {
        typename Domain::guard guard;
        sim::op_scope op("SplitOrderedMap::put");
        const std::uint64_t h = KeyOf{}(k);
        const std::uint64_t so = detail::split_ordinary_key(h);
        const std::size_t size =
            bucket_count_.load(std::memory_order_acquire);
        Node* sentinel = get_bucket(h % size);
        Node* node = nullptr;
        std::uint64_t attempts = 0;
        for (;;) {
            Window w = find(sentinel, so, k);
            if (w.curr != nullptr && matches(w.curr, so, k)) {
                delete node;
                // In-place update: linearizes at the store (or, if a
                // concurrent remove marked the node first, just before
                // that mark — the stored value is then never observable,
                // because every reader re-checks the mark after loading).
                gate_enter();
                w.curr->value.store(v, std::memory_order_release);
                gate_exit();
                count_retries(attempts);
                return false;
            }
            if (node == nullptr) {
                node = new Node(so, k, v);
            }
            node->next.store(w.curr, false);
            gate_enter();
            const bool linked =
                w.pred->next.compare_and_set(w.curr, node, false, false);
            gate_exit();
            if (linked) break;
            ++attempts;
        }
        count_retries(attempts);
        const std::size_t count =
            map_size_.fetch_add(1, std::memory_order_relaxed) + 1;
        maybe_resize(count, size);
        return true;
    }

    /// Snapshot read; linearizes at the value load (validated by the
    /// mark re-check — marks are monotone) or, for a marked node, at
    /// the mark re-check itself.
    std::optional<V> get(const K& k) {
        typename Domain::guard guard;
        sim::op_scope op("SplitOrderedMap::get");
        const std::uint64_t h = KeyOf{}(k);
        const std::uint64_t so = detail::split_ordinary_key(h);
        const std::size_t size =
            bucket_count_.load(std::memory_order_acquire);
        Node* curr = get_bucket(h % size);
        bool marked = false;
        // Wait-free traversal: marked nodes are skipped logically but
        // never snipped here.
        while (curr != nullptr && precedes(curr, so, k)) {
            curr = curr->next.get(&marked);
        }
        if (curr == nullptr || !matches(curr, so, k)) return std::nullopt;
        const V v = curr->value.load(std::memory_order_acquire);
        curr->next.get(&marked);
        if (marked) return std::nullopt;
        return v;
    }

    /// Remove.  Linearizes at the mark CAS.
    bool del(const K& k) {
        typename Domain::guard guard;
        sim::op_scope op("SplitOrderedMap::del");
        const std::uint64_t h = KeyOf{}(k);
        const std::uint64_t so = detail::split_ordinary_key(h);
        const std::size_t size =
            bucket_count_.load(std::memory_order_acquire);
        Node* sentinel = get_bucket(h % size);
        std::uint64_t attempts = 0;
        for (;;) {
            Window w = find(sentinel, so, k);
            if (w.curr == nullptr || !matches(w.curr, so, k)) {
                count_retries(attempts);
                return false;
            }
            Node* succ = w.curr->next.load().ptr();
            gate_enter();
            const bool marked_it =
                w.curr->next.attempt_mark(succ, true);
            gate_exit();
            if (!marked_it) {
                ++attempts;
                continue;
            }
            // Physical snip is best-effort; find() finishes it otherwise.
            if (w.pred->next.compare_and_set(w.curr, succ, false, false)) {
                Domain::retire(w.curr);
            }
            count_retries(attempts);
            map_size_.fetch_sub(1, std::memory_order_relaxed);
            return true;
        }
    }

    /// Atomic snapshot (see the gate protocol above).  Appends up to
    /// `limit` (key, value) pairs in split order (0 = the whole map)
    /// and returns the count.  A truncated collect is still a snapshot:
    /// the gate pair brackets the traversal, so s1 == s2 with no writer
    /// in flight makes any *prefix* of the list a consistent cut — the
    /// collect stops early instead of gathering everything and
    /// discarding the rest.  Obstruction-free: retries while mutators
    /// are in flight.
    std::size_t scan(std::vector<std::pair<K, V>>& out,
                     std::size_t limit = 0) {
        typename Domain::guard guard;
        sim::op_scope op("SplitOrderedMap::scan");
        Backoff backoff;
        const std::size_t base = out.size();
        for (;;) {
            const std::uint64_t s1 = gate_.load(std::memory_order_seq_cst);
            if ((s1 & kWriterMask) != 0) {
                obs::counter<obs::ev::kv_scan_retries>::inc();
                backoff.backoff();
                continue;
            }
            out.resize(base);
            for (Node* n = head_; n != nullptr;) {
                if (limit != 0 && out.size() - base == limit) break;
                bool marked = false;
                Node* next = n->next.get(&marked);
                if ((n->so_key & 1ull) != 0 && !marked) {
                    out.emplace_back(
                        n->key, n->value.load(std::memory_order_acquire));
                }
                n = next;
            }
            const std::uint64_t s2 = gate_.load(std::memory_order_seq_cst);
            if (s1 == s2) return out.size() - base;
            obs::counter<obs::ev::kv_scan_retries>::inc();
            backoff.backoff();
        }
    }

    std::size_t size() const {
        return map_size_.load(std::memory_order_relaxed);
    }
    std::size_t buckets() const {
        return bucket_count_.load(std::memory_order_acquire);
    }
    /// Directory slots installed so far (growth leaves nodes in place —
    /// the growth test pins this against buckets()).
    std::size_t segments_installed() const {
        std::size_t n = 0;
        for (const auto& s : segments_) {
            if (s.load(std::memory_order_acquire) != nullptr) ++n;
        }
        return n;
    }

  private:
    // ---------------- scan gate -------------------------------------
    void gate_enter() {
        gate_.fetch_add(1, std::memory_order_seq_cst);
    }
    void gate_exit() {
        // -1 writer in flight, +1 completed attempt, in one RMW.
        gate_.fetch_add(kDoneInc - 1, std::memory_order_seq_cst);
    }
    static void count_retries(std::uint64_t attempts) {
        if (attempts != 0) {
            obs::counter<obs::ev::kv_cas_retries>::inc(attempts);
        }
    }

    // ---------------- resize policy ---------------------------------
    // Double when the average chain exceeds max_load_.  Helper keeps
    // the CAS out of the put() retry loop (it must run at most once per
    // put) and owns the kv.resizes attribution counter.
    void maybe_resize(std::size_t count, std::size_t size) {
        if (count / size > max_load_ && size * 2 <= kMaxBuckets) {
            std::size_t expected = size;
            if (bucket_count_.compare_exchange_strong(
                    expected, size * 2, std::memory_order_acq_rel,
                    std::memory_order_relaxed)) {
                obs::counter<obs::ev::kv_resizes>::inc();
            }
        }
    }

    // ---------------- doubling bucket directory ---------------------
    static std::size_t segment_of(std::size_t bucket) {
        return bucket < (std::size_t{1} << kSegment0Bits)
                   ? 0
                   : std::bit_width(bucket) - kSegment0Bits;
    }
    static std::size_t segment_base(std::size_t seg) {
        return seg == 0 ? 0
                        : std::size_t{1} << (kSegment0Bits + seg - 1);
    }
    static std::size_t segment_size(std::size_t seg) {
        return seg == 0 ? std::size_t{1} << kSegment0Bits
                        : segment_base(seg);
    }

    tamp::atomic<Node*>& bucket_ref(std::size_t bucket) {
        const std::size_t seg = segment_of(bucket);
        assert(seg < kMaxSegments);
        tamp::atomic<Node*>* segment =
            segments_[seg].load(std::memory_order_acquire);
        if (segment == nullptr) {
            const std::size_t len = segment_size(seg);
            auto* fresh = new tamp::atomic<Node*>[len];
            for (std::size_t i = 0; i < len; ++i) {
                fresh[i].store(nullptr, std::memory_order_relaxed);
            }
            tamp::atomic<Node*>* expected = nullptr;
            if (segments_[seg].compare_exchange_strong(
                    expected, fresh, std::memory_order_acq_rel,
                    std::memory_order_acquire)) {
                segment = fresh;
            } else {
                delete[] fresh;
                segment = expected;
            }
        }
        return segment[bucket - segment_base(seg)];
    }

    /// Parent bucket: clear the most significant set bit (Fig. 13.17).
    static std::size_t parent_of(std::size_t bucket) {
        assert(bucket > 0);
        return bucket & ~(std::size_t{1}
                          << (63 - std::countl_zero<std::uint64_t>(bucket)));
    }

    /// Bucket sentinel, installing it (and recursively its parent's) on
    /// first touch — initializeBucket of Fig. 13.16.  The sentinel is
    /// linked into the parent's chain *before* the directory cell is
    /// CAS-published, so any thread that reads a non-null cell sees a
    /// fully linked list entry (tests/sim_test.cpp proves the order;
    /// tests/sim_bugs_test.cpp carries the publish-first twin).
    Node* get_bucket(std::size_t bucket) {
        tamp::atomic<Node*>& ref = bucket_ref(bucket);
        Node* sentinel = ref.load(std::memory_order_acquire);
        if (sentinel != nullptr) return sentinel;

        Node* parent = get_bucket(parent_of(bucket));
        Node* node =
            list_add_sentinel(parent, detail::split_sentinel_key(bucket));
        Node* expected = nullptr;
        if (ref.compare_exchange_strong(expected, node,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
            obs::counter<obs::ev::kv_sentinel_installs>::inc();
        }
        return ref.load(std::memory_order_acquire);
    }

    // ------------- Harris–Michael machinery over (so_key, key) ------

    bool precedes(const Node* n, std::uint64_t so, const K& k) const {
        if (n->so_key != so) return n->so_key < so;
        if ((so & 1ull) == 0) return false;  // sentinels unique per key
        return !(n->key == k) && n->key < k;
    }
    bool matches(const Node* n, std::uint64_t so, const K& k) const {
        if (n->so_key != so) return false;
        if ((so & 1ull) == 0) return true;
        return n->key == k;
    }

    // Stack-local find() result, never shared between threads.
    struct Window {
        Node* pred;  // tamp-lint: allow(plain-shared-member)
        Node* curr;  // may be null   // tamp-lint: allow(plain-shared-member)
    };

    /// find() from `start`, snipping marked nodes (physical cleanup —
    /// no gate traffic; the logical removal was the mark CAS).
    Window find(Node* start, std::uint64_t so, const K& k) {
    retry:
        while (true) {
            Node* pred = start;
            Node* curr = pred->next.load().ptr();
            while (curr != nullptr) {
                bool marked = false;
                Node* succ = curr->next.get(&marked);
                while (marked) {
                    if (!pred->next.compare_and_set(curr, succ, false,
                                                    false)) {
                        goto retry;
                    }
                    Domain::retire(curr);
                    curr = succ;
                    if (curr == nullptr) return {pred, nullptr};
                    succ = curr->next.get(&marked);
                }
                if (!precedes(curr, so, k)) return {pred, curr};
                pred = curr;
                curr = succ;
            }
            return {pred, nullptr};
        }
    }

    /// Insert-or-find a sentinel; returns the resident node.
    Node* list_add_sentinel(Node* start, std::uint64_t so) {
        Node* node = nullptr;
        const K dummy{};
        while (true) {
            Window w = find(start, so, dummy);
            if (w.curr != nullptr && w.curr->so_key == so) {
                delete node;
                return w.curr;  // someone else linked it
            }
            if (node == nullptr) node = new Node(so, K{}, V{});
            node->next.store(w.curr, false);
            if (w.pred->next.compare_and_set(w.curr, node, false, false)) {
                return node;
            }
        }
    }

    const std::size_t max_load_;
    Node* const head_;  // bucket 0's sentinel (so_key == 0)
    // The gate is the scan/mutator rendezvous; the size counter is
    // bumped by every put/del — keep each hot word on its own line.
    alignas(kCacheLineSize) tamp::atomic<std::uint64_t> gate_{0};
    alignas(kCacheLineSize) tamp::atomic<std::size_t> bucket_count_;
    alignas(kCacheLineSize) tamp::atomic<std::size_t> map_size_{0};
    tamp::atomic<tamp::atomic<Node*>*> segments_[kMaxSegments];
};

}  // namespace tamp::kv
