// tamp/kv/kv_store.hpp
//
// KvStore — the serving layer of the KV service: N independent
// SplitOrderedMap shards behind a power-of-two router, per the
// partition-first doctrine (shard so most traffic never meets a rival,
// then make the per-shard structure lock-free so the traffic that does
// meet one doesn't serialize).
//
// Routing.  Shards are picked from the TOP hash bits
// ((h >> 48) & mask) and multi_update stripes from the middle
// ((h >> 24) & mask), while SplitOrderedMap buckets come from the LOW
// bits (h % buckets).  Using disjoint bit ranges keeps the three layers
// uncorrelated — low-bit shard routing would map each shard's keys onto
// a fraction of its own buckets and waste the table.
//
// multi_update.  Cross-key atomicity rides on striped BackoffLocks:
// the update set's stripes are sorted and deduplicated, locked in
// ascending order (total order => no deadlock), the puts applied, and
// the locks released.  Atomicity is relative to other multi_update
// callers — plain put/get/del bypass the stripes by design (the
// single-key ops stay lock-free); readers that need cross-key
// consistency use scan's snapshot instead.  Lock-wait time lands in the
// tamp.kv.mu_wait_ns histogram, which is how a p999 sample in
// BENCH_kv.json gets attributed to stripe contention.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/kv/split_ordered_map.hpp"
#include "tamp/lists/keyed.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/events.hpp"
#include "tamp/obs/timer.hpp"
#include "tamp/reclaim/domain.hpp"
#include "tamp/spin/backoff_lock.hpp"

namespace tamp::kv {

// Construction-time value type, copied into the store — never shared
// mutably across threads (hence the plain-shared-member allows).
struct Config {
    // rounded up to a power of two  // tamp-lint: allow(plain-shared-member)
    std::size_t shards = 8;
    // multi_update locks (pow two)  // tamp-lint: allow(plain-shared-member)
    std::size_t stripes = 64;
    // per-shard starting table size // tamp-lint: allow(plain-shared-member)
    std::size_t initial_buckets = 16;
    // per-shard resize threshold    // tamp-lint: allow(plain-shared-member)
    std::size_t max_load = 4;
};

template <std::totally_ordered K, typename V,
          typename KeyOf = DefaultKeyOf<K>,
          reclaim::domain Domain = reclaim::ebr>
class KvStore {
  public:
    using map_type = SplitOrderedMap<K, V, KeyOf, Domain>;
    using key_type = K;
    using mapped_type = V;

    explicit KvStore(const Config& cfg = {})
        : shard_mask_(round_pow2(cfg.shards) - 1),
          stripe_mask_(round_pow2(cfg.stripes) - 1),
          stripes_(stripe_mask_ + 1) {
        shards_.reserve(shard_mask_ + 1);
        for (std::size_t i = 0; i <= shard_mask_; ++i) {
            shards_.push_back(std::make_unique<Padded<map_type>>(
                cfg.initial_buckets, cfg.max_load));
        }
    }

    KvStore(const KvStore&) = delete;
    KvStore& operator=(const KvStore&) = delete;

    std::optional<V> get(const K& k) {
        obs::scoped_timer<obs::ev::kv_op_ns, 4> lat;
        obs::counter<obs::ev::kv_gets>::inc();
        return shard_for(k).get(k);
    }

    /// Insert-or-update; true when k was newly inserted.
    bool put(const K& k, const V& v) {
        obs::scoped_timer<obs::ev::kv_op_ns, 4> lat;
        obs::counter<obs::ev::kv_puts>::inc();
        const bool inserted = shard_for(k).put(k, v);
        if (inserted) obs::counter<obs::ev::kv_inserts>::inc();
        return inserted;
    }

    bool del(const K& k) {
        obs::scoped_timer<obs::ev::kv_op_ns, 4> lat;
        obs::counter<obs::ev::kv_dels>::inc();
        return shard_for(k).del(k);
    }

    /// Atomic snapshot of up to `limit` pairs (0 = unlimited) from the
    /// shard owning `k` — the YCSB scan op.  The limit is pushed into
    /// the map's gated collect, so a short scan costs O(limit), not
    /// O(shard).
    std::size_t scan(const K& k, std::size_t limit,
                     std::vector<std::pair<K, V>>& out) {
        obs::scoped_timer<obs::ev::kv_op_ns, 4> lat;
        obs::counter<obs::ev::kv_scans>::inc();
        return shard_for(k).scan(out, limit);
    }

    /// Whole-store dump: per-shard snapshots concatenated.  Each shard's
    /// slice is atomic; the cut between shards is not.
    std::size_t snapshot(std::vector<std::pair<K, V>>& out) {
        const std::size_t base = out.size();
        for (auto& s : shards_) s->value.scan(out);
        return out.size() - base;
    }

    /// Apply every (key, value) put as one atomic step relative to
    /// other multi_update callers.  Stripes are locked in sorted order.
    void multi_update(const std::vector<std::pair<K, V>>& kvs) {
        obs::scoped_timer<obs::ev::kv_op_ns, 4> lat;
        obs::counter<obs::ev::kv_multi_updates>::inc();
        // Collect the stripe set (sorted + deduped => total lock order).
        std::vector<std::size_t> stripes;
        stripes.reserve(kvs.size());
        for (const auto& [k, v] : kvs) {
            stripes.push_back(stripe_of(KeyOf{}(k)));
        }
        std::sort(stripes.begin(), stripes.end());
        stripes.erase(std::unique(stripes.begin(), stripes.end()),
                      stripes.end());
        const std::uint64_t t0 = obs::tick();
        for (std::size_t s : stripes) stripes_[s].value.lock();
        obs::record_since<obs::ev::kv_mu_wait_ns>(t0);
        for (const auto& [k, v] : kvs) {
            if (shard_for(k).put(k, v)) {
                obs::counter<obs::ev::kv_inserts>::inc();
            }
        }
        for (auto it = stripes.rbegin(); it != stripes.rend(); ++it) {
            stripes_[*it].value.unlock();
        }
    }

    std::size_t size() const {
        std::size_t n = 0;
        for (const auto& s : shards_) n += s->value.size();
        return n;
    }
    std::size_t shards() const { return shards_.size(); }
    std::size_t stripes() const { return stripes_.size(); }

    /// The shard index `k` routes to (exposed for the routing test).
    std::size_t shard_index(const K& k) const {
        return shard_of(KeyOf{}(k));
    }
    map_type& shard(std::size_t i) { return shards_[i]->value; }

  private:
    static std::size_t round_pow2(std::size_t n) {
        std::size_t p = 1;
        while (p < n) p *= 2;
        return p;
    }
    // Top bits route shards, middle bits route stripes, low bits route
    // the per-shard buckets (see header comment).  The mask keeps the
    // shift safe for any shard count including 1.
    std::size_t shard_of(std::uint64_t h) const {
        return (h >> 48) & shard_mask_;
    }
    std::size_t stripe_of(std::uint64_t h) const {
        return (h >> 24) & stripe_mask_;
    }
    map_type& shard_for(const K& k) {
        return shards_[shard_of(KeyOf{}(k))]->value;
    }

    const std::size_t shard_mask_;
    const std::size_t stripe_mask_;
    std::vector<std::unique_ptr<Padded<map_type>>> shards_;
    std::vector<Padded<BackoffLock>> stripes_;
};

}  // namespace tamp::kv
