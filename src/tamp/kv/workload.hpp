// tamp/kv/workload.hpp
//
// kv::Workload — a YCSB-style load generator for KvStore (Cooper et al.'s
// benchmark shape: zipfian-skewed key popularity, fixed read/update/
// insert/scan mix, closed or open loop).  The point, per the multicore
// macro-benchmark methodology the ROADMAP cites: a structure's
// micro-bench win only counts if it survives composition under skewed
// traffic, and skew is what a uniform key pick can never produce.
//
//   * ZipfianSampler — Gray et al.'s constant-time zipfian generator
//     (the YCSB one): three precomputed constants turn one uniform
//     variate into a zipf-distributed rank.  All state is const after
//     construction, so one sampler is shared read-only by every thread.
//     Ranks map directly onto key ids; the placement scattering YCSB's
//     key scrambling exists for is already done by the store's
//     DefaultKeyOf splitmix finalizer (hot keys land on unrelated
//     shards and buckets even though their ids are adjacent).
//
//   * Closed loop — each worker calls step() back-to-back: offered load
//     tracks completion rate (the classic bench shape; measures
//     capacity).
//
//   * Open loop — producers push Request records into MS-queue lanes
//     and work-stealing pool drainers execute them: offered load is set
//     by the producers regardless of service rate, so queueing delay
//     becomes visible.  Submit→completion time lands in the
//     tamp.kv.sojourn_ns histogram — the service-level latency a closed
//     loop structurally cannot show (coordinated omission).

#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/core/bits.hpp"
#include "tamp/core/cacheline.hpp"
#include "tamp/core/random.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/events.hpp"
#include "tamp/obs/timer.hpp"
#include "tamp/queues/ms_queue.hpp"
#include "tamp/reclaim/domain.hpp"
#include "tamp/steal/pool.hpp"

namespace tamp::kv {

enum class OpKind : std::uint8_t { kRead, kUpdate, kInsert, kScan };

/// Operation mix in percent; must sum to 100.  Value type, copied into
/// each Workload and read-only from there (hence the lint allows — the
/// generator's mutable shared state is all tamp::atomic below).
struct WorkloadMix {
    int reads;    // tamp-lint: allow(plain-shared-member)
    int updates;  // tamp-lint: allow(plain-shared-member)
    int inserts;  // tamp-lint: allow(plain-shared-member)
    int scans;    // tamp-lint: allow(plain-shared-member)
};

// The three mixes BENCH_kv.json ladders over (YCSB B-ish, A-ish, E-ish).
inline constexpr WorkloadMix kReadHeavy{95, 5, 0, 0};
inline constexpr WorkloadMix kUpdateHeavy{50, 50, 0, 0};
inline constexpr WorkloadMix kScanMixed{70, 20, 5, 5};

enum class KeyDist : std::uint8_t { kZipfian, kUniform };

/// Experiment parameters: a value type, held const inside Workload.
struct WorkloadConfig {
    WorkloadMix mix = kReadHeavy;
    KeyDist dist = KeyDist::kZipfian;
    std::size_t key_space = std::size_t{1} << 20;  // preloaded keys
    // zipfian skew (YCSB default)  // tamp-lint: allow(plain-shared-member)
    double theta = 0.99;
    // scan length cap              // tamp-lint: allow(plain-shared-member)
    std::size_t scan_limit = 16;
    // per-thread pre-measure steps // tamp-lint: allow(plain-shared-member)
    std::size_t warmup_ops = 1000;
    // per-run RNG seed             // tamp-lint: allow(plain-shared-member)
    std::uint64_t seed = 42;
};

/// Gray et al. "Quickly Generating Billion-Record Synthetic Databases"
/// §3.2 — the incremental zipfian generator YCSB adopted.  next() maps
/// one uniform u in [0,1) to a rank in [0, n): rank 0 is the hottest
/// key (probability ~ (1-theta)-ish of the head), tail ranks decay as
/// 1/rank^theta.  Shared read-only across threads (all members const).
class ZipfianSampler {
  public:
    ZipfianSampler(std::size_t n, double theta)
        : n_(n),
          theta_(theta),
          alpha_(1.0 / (1.0 - theta)),
          half_pow_theta_(std::pow(0.5, theta)),
          zetan_(zeta(n, theta)),
          eta_((1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
               (1.0 - zeta(2, theta) / zetan_)) {
        assert(n >= 2 && theta > 0.0 && theta < 1.0);
    }

    std::uint64_t next(XorShift64& rng) const {
        // 53 uniform mantissa bits -> u in [0, 1).
        const double u =
            static_cast<double>(rng.next() >> 11) * 0x1.0p-53;
        const double uz = u * zetan_;
        if (uz < 1.0) return 0;
        if (uz < 1.0 + half_pow_theta_) return 1;
        const auto rank = static_cast<std::uint64_t>(
            static_cast<double>(n_) *
            std::pow(eta_ * u - eta_ + 1.0, alpha_));
        return rank >= n_ ? n_ - 1 : rank;  // fp edge: clamp
    }

    std::size_t n() const { return n_; }

  private:
    static double zeta(std::size_t n, double theta) {
        double sum = 0.0;
        for (std::size_t i = 1; i <= n; ++i) {
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        }
        return sum;
    }

    const std::size_t n_;
    const double theta_;
    const double alpha_;
    const double half_pow_theta_;
    const double zetan_;
    const double eta_;
};

template <typename Store>
class Workload {
  public:
    using K = typename Store::key_type;
    using V = typename Store::mapped_type;
    static_assert(std::is_constructible_v<K, std::uint64_t> &&
                      std::is_constructible_v<V, std::uint64_t>,
                  "the generator synthesizes keys/values from 64-bit ints");

    /// Per-thread generator state: private RNG (so threads never
    /// contend on randomness), a reusable scan buffer, and the
    /// thread's private insert-key cursor.
    struct ThreadState {
        XorShift64 rng;
        std::vector<std::pair<K, V>> scan_buf;
        // thread-private cursor       // tamp-lint: allow(plain-shared-member)
        std::uint64_t next_insert;
    };

    Workload(Store& store, const WorkloadConfig& cfg)
        : store_(&store),
          cfg_(cfg),
          zipf_(cfg.key_space, cfg.theta) {}

    const WorkloadConfig& config() const { return cfg_; }

    /// Preload keys [0, key_space), split across threads.
    void load(std::size_t n_threads = 1) {
        std::vector<std::thread> ts;
        ts.reserve(n_threads);
        for (std::size_t t = 0; t < n_threads; ++t) {
            ts.emplace_back([this, t, n_threads] {
                for (std::uint64_t r = t; r < cfg_.key_space;
                     r += n_threads) {
                    store_->put(K(r), V(r));
                }
            });
        }
        for (auto& t : ts) t.join();
    }

    ThreadState make_state(unsigned tid) const {
        return ThreadState{
            XorShift64(detail::mix64(cfg_.seed ^ (0x10001ull * tid + 1))),
            {},
            // Private insert range per thread, above the preload range.
            (std::uint64_t{tid} << 32) | (std::uint64_t{1} << 62)};
    }

    /// Draw the next operation without executing it (the open-loop
    /// producer path).  Returns kind + key; value is the caller's.
    OpKind next_op(ThreadState& ts, K& key) {
        const auto r = static_cast<int>(ts.rng.next_below(100));
        const WorkloadMix& m = cfg_.mix;
        if (r < m.reads) {
            key = K(pick_key(ts));
            return OpKind::kRead;
        }
        if (r < m.reads + m.updates) {
            key = K(pick_key(ts));
            return OpKind::kUpdate;
        }
        if (r < m.reads + m.updates + m.inserts) {
            key = K(ts.next_insert++);
            return OpKind::kInsert;
        }
        key = K(pick_key(ts));
        return OpKind::kScan;
    }

    /// One closed-loop step: draw an op and run it against the store.
    OpKind step(ThreadState& ts) {
        K key{};
        const OpKind op = next_op(ts, key);
        execute(op, key, V(ts.rng.next()), ts.scan_buf);
        return op;
    }

    void execute(OpKind op, const K& key, const V& val,
                 std::vector<std::pair<K, V>>& scan_buf) {
        switch (op) {
            case OpKind::kRead:
                (void)store_->get(key);
                break;
            case OpKind::kUpdate:
            case OpKind::kInsert:
                (void)store_->put(key, val);
                break;
            case OpKind::kScan:
                scan_buf.clear();
                (void)store_->scan(key, cfg_.scan_limit, scan_buf);
                break;
        }
    }

    void warmup(ThreadState& ts) {
        for (std::size_t i = 0; i < cfg_.warmup_ops; ++i) step(ts);
    }

    /// Closed loop: `threads` workers, each warmup + ops_per_thread
    /// back-to-back steps.  Returns total measured ops.
    std::size_t run_closed(std::size_t threads,
                           std::size_t ops_per_thread) {
        std::vector<std::thread> ts;
        ts.reserve(threads);
        for (std::size_t t = 0; t < threads; ++t) {
            ts.emplace_back([this, t, ops_per_thread] {
                ThreadState s = make_state(static_cast<unsigned>(t));
                warmup(s);
                for (std::size_t i = 0; i < ops_per_thread; ++i) step(s);
            });
        }
        for (auto& th : ts) th.join();
        return threads * ops_per_thread;
    }

  private:
    std::uint64_t pick_key(ThreadState& ts) const {
        return cfg_.dist == KeyDist::kZipfian
                   ? zipf_.next(ts.rng)
                   : ts.rng.next() % cfg_.key_space;
    }

    Store* const store_;
    const WorkloadConfig cfg_;
    const ZipfianSampler zipf_;
};

/// Open-loop plumbing: MS-queue request lanes drained by work-stealing
/// pool tasks.  Producers call submit() at whatever rate the experiment
/// dictates; drainers execute against the store and stamp the sojourn
/// (submit -> completion) into tamp.kv.sojourn_ns.
template <typename Store>
class Pipeline {
  public:
    using K = typename Store::key_type;
    using V = typename Store::mapped_type;

    // One queued operation.  Owned by exactly one thread at a time —
    // the producer until enqueue, then the drainer that dequeued it;
    // the MS queue's linearization is the hand-off.
    struct Request {
        OpKind op;  // tamp-lint: allow(plain-shared-member)
        K key;
        V val;
        // obs::tick() at submit; 0 = stats off
        std::uint64_t t_submit;  // tamp-lint: allow(plain-shared-member)
    };

    Pipeline(Store& store, Workload<Store>& workload,
             WorkStealingPool& pool, std::size_t lanes = 1)
        : store_(&store), workload_(&workload), pool_(&pool) {
        lanes_.reserve(lanes == 0 ? 1 : lanes);
        for (std::size_t i = 0; i < (lanes == 0 ? 1 : lanes); ++i) {
            lanes_.push_back(std::make_unique<Lane>());
        }
    }

    /// Launch one self-rescheduling drainer task per lane.  Each task
    /// processes a batch then resubmits itself, so pool workers stay
    /// available for other work between batches.
    void start() {
        stop_.store(false, std::memory_order_release);
        for (std::size_t i = 0; i < lanes_.size(); ++i) {
            pool_->submit([this, i] { drain_lane(i); });
        }
    }

    /// Producer side: enqueue one request (lane picked round-robin by
    /// the producer's own counter in `lane_hint`).
    void submit(OpKind op, const K& key, const V& val,
                std::uint64_t lane_hint) {
        submitted_.fetch_add(1, std::memory_order_relaxed);
        lanes_[lane_hint % lanes_.size()]->queue.enqueue(
            Request{op, key, val, obs::tick()});
    }

    /// Wait until every submitted request completed.
    void drain() {
        SpinWait w;
        while (completed_.load(std::memory_order_acquire) <
               submitted_.load(std::memory_order_acquire)) {
            w.spin();
        }
    }

    /// Stop the drainer tasks and quiesce the pool.
    void stop() {
        drain();
        stop_.store(true, std::memory_order_release);
        pool_->wait_idle();
    }

    std::uint64_t completed() const {
        return completed_.load(std::memory_order_acquire);
    }
    std::uint64_t submitted() const {
        return submitted_.load(std::memory_order_acquire);
    }

  private:
    struct Lane {
        LockFreeQueue<Request> queue;
    };

    void drain_lane(std::size_t i) {
        constexpr int kBatch = 64;
        std::vector<std::pair<K, V>> scan_buf;
        Request r{};
        for (int n = 0; n < kBatch; ++n) {
            if (!lanes_[i]->queue.try_dequeue(r)) break;
            workload_->execute(r.op, r.key, r.val, scan_buf);
            if (r.t_submit != 0) {
                obs::record_since<obs::ev::kv_sojourn_ns>(r.t_submit);
            }
            completed_.fetch_add(1, std::memory_order_release);
        }
        if (!stop_.load(std::memory_order_acquire)) {
            pool_->submit([this, i] { drain_lane(i); });
        }
    }

    Store* const store_;
    Workload<Store>* const workload_;
    WorkStealingPool* const pool_;
    std::vector<std::unique_ptr<Lane>> lanes_;
    alignas(kCacheLineSize) tamp::atomic<std::uint64_t> submitted_{0};
    alignas(kCacheLineSize) tamp::atomic<std::uint64_t> completed_{0};
    tamp::atomic<bool> stop_{false};
};

}  // namespace tamp::kv
