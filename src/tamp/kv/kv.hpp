// tamp/kv/kv.hpp — umbrella header for the KV service layer.
#pragma once

#include "tamp/kv/kv_store.hpp"
#include "tamp/kv/split_ordered_map.hpp"
#include "tamp/kv/workload.hpp"
