// tamp/pqueue/fine_heap.hpp
//
// FineGrainedHeap (§15.4, Figs. 15.10–15.13): a classic array heap whose
// percolations hold only hand-over-hand node locks, so an add bubbling up
// and a removeMin trickling down proceed concurrently in different parts
// of the tree.
//
// The subtle machinery is the (tag, owner) pair on each node: an add's
// item travels upward tagged BUSY with the adder's thread id; a removeMin
// swapping the last leaf into the root may *overtake* a BUSY item, after
// which the adder detects "not mine anymore" and simply follows its item
// upward.  EMPTY tags let a trickle-down stop at the frontier.

#pragma once

#include <cassert>
#include <cstddef>
#include <mutex>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/core/thread_registry.hpp"

namespace tamp {

template <typename T>
class FineGrainedHeap {
    enum class Status { kEmpty, kAvailable, kBusy };
    static constexpr std::size_t kRoot = 1;
    static constexpr long kNoOne = -1;

    struct HeapNode {
        std::mutex mu;
        Status tag = Status::kEmpty;
        std::uint64_t priority = 0;
        T item{};
        long owner = kNoOne;

        void init(const T& my_item, std::uint64_t my_priority) {
            item = my_item;
            priority = my_priority;
            tag = Status::kBusy;
            owner = static_cast<long>(thread_id());
        }
        bool am_owner() const {
            return tag == Status::kBusy &&
                   owner == static_cast<long>(thread_id());
        }
    };

  public:
    using value_type = T;

    explicit FineGrainedHeap(std::size_t capacity = 1024)
        : heap_(capacity + kRoot) {}

    /// Insert; lower priority value = removed earlier.
    void add(const T& item, std::uint64_t priority) {
        heap_lock_.lock();
        assert(next_ < heap_.size() && "FineGrainedHeap overflow");
        std::size_t child = next_++;
        heap_[child].value.mu.lock();
        heap_[child].value.init(item, priority);
        heap_lock_.unlock();
        heap_[child].value.mu.unlock();

        // Bubble up while our item beats its parent.
        while (child > kRoot) {
            const std::size_t parent = child / 2;
            heap_[parent].value.mu.lock();
            heap_[child].value.mu.lock();
            const std::size_t old_child = child;
            HeapNode& p = heap_[parent].value;
            HeapNode& c = heap_[child].value;
            if (p.tag == Status::kAvailable && c.am_owner()) {
                if (c.priority < p.priority) {
                    swap_nodes(p, c);
                    child = parent;
                } else {
                    // Settled: hand the item over to the heap.
                    c.tag = Status::kAvailable;
                    c.owner = kNoOne;
                    c.mu.unlock();
                    p.mu.unlock();
                    return;
                }
            } else if (!c.am_owner()) {
                // A removeMin swapped our item away (upward): chase it.
                child = parent;
            }
            // else: parent is BUSY/EMPTY (another op in flight): retry at
            // the same position.
            heap_[old_child].value.mu.unlock();
            heap_[parent].value.mu.unlock();
        }
        if (child == kRoot) {
            heap_[kRoot].value.mu.lock();
            if (heap_[kRoot].value.am_owner()) {
                heap_[kRoot].value.tag = Status::kAvailable;
                heap_[kRoot].value.owner = kNoOne;
            }
            heap_[kRoot].value.mu.unlock();
        }
    }

    /// Extract the minimum; false when empty.
    bool try_remove_min(T& out) {
        heap_lock_.lock();
        if (next_ == kRoot) {  // empty
            heap_lock_.unlock();
            return false;
        }
        const std::size_t bottom = --next_;
        heap_[kRoot].value.mu.lock();
        if (bottom == kRoot) {
            // Single element: the root is it.
            heap_lock_.unlock();
            out = heap_[kRoot].value.item;
            heap_[kRoot].value.tag = Status::kEmpty;
            heap_[kRoot].value.owner = kNoOne;
            heap_[kRoot].value.mu.unlock();
            return true;
        }
        heap_[bottom].value.mu.lock();
        heap_lock_.unlock();

        out = heap_[kRoot].value.item;
        heap_[kRoot].value.tag = Status::kEmpty;
        heap_[kRoot].value.owner = kNoOne;
        swap_nodes(heap_[kRoot].value, heap_[bottom].value);
        heap_[bottom].value.mu.unlock();

        if (heap_[kRoot].value.tag == Status::kEmpty) {
            // The swapped-in leaf was itself empty (a BUSY item in
            // transit got taken by its adder): nothing to trickle.
            heap_[kRoot].value.mu.unlock();
            return true;
        }
        // Trickle the (possibly BUSY) swapped-in item down.  A BUSY item
        // settles here: it now belongs to the heap at wherever it lands;
        // its adder will detect the ownership change and stop.
        heap_[kRoot].value.tag = Status::kAvailable;
        heap_[kRoot].value.owner = kNoOne;
        std::size_t parent = kRoot;
        while (2 * parent < heap_.size()) {
            const std::size_t left = 2 * parent;
            const std::size_t right = 2 * parent + 1;
            const bool has_right = right < heap_.size();
            heap_[left].value.mu.lock();
            if (has_right) heap_[right].value.mu.lock();
            std::size_t child;
            if (heap_[left].value.tag == Status::kEmpty) {
                if (has_right) heap_[right].value.mu.unlock();
                heap_[left].value.mu.unlock();
                break;
            }
            if (!has_right || heap_[right].value.tag == Status::kEmpty ||
                heap_[left].value.priority <=
                    heap_[right].value.priority) {
                if (has_right) heap_[right].value.mu.unlock();
                child = left;
            } else {
                heap_[left].value.mu.unlock();
                child = right;
            }
            if (heap_[child].value.priority <
                    heap_[parent].value.priority &&
                heap_[child].value.tag != Status::kEmpty) {
                swap_nodes(heap_[parent].value, heap_[child].value);
                heap_[parent].value.mu.unlock();
                parent = child;
            } else {
                heap_[child].value.mu.unlock();
                break;
            }
        }
        heap_[parent].value.mu.unlock();
        return true;
    }

    std::size_t size() const {
        std::lock_guard<std::mutex> g(heap_lock_);
        return next_ - kRoot;
    }

  private:
    static void swap_nodes(HeapNode& a, HeapNode& b) {
        std::swap(a.tag, b.tag);
        std::swap(a.priority, b.priority);
        std::swap(a.item, b.item);
        std::swap(a.owner, b.owner);
    }

    mutable std::mutex heap_lock_;  // guards next_ only
    std::size_t next_ = kRoot;
    std::vector<Padded<HeapNode>> heap_;
};

}  // namespace tamp
