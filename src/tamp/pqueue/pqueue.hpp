// tamp/pqueue/pqueue.hpp — umbrella for Chapter 15 priority queues.
#pragma once

#include "tamp/pqueue/fine_heap.hpp"
#include "tamp/pqueue/simple_pq.hpp"
#include "tamp/pqueue/skip_queue.hpp"
