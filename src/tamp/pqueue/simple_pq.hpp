// tamp/pqueue/simple_pq.hpp
//
// The Chapter 15 *bounded-range* priority queues (§15.2): priorities come
// from a small range [0, m).
//
//  * LinearArrayPQ (Fig. 15.2's SimpleLinear) — one concurrent pool per
//    priority; removeMin scans pools in priority order.  O(m) removal,
//    trivially parallel insertion.
//  * TreePQ (Fig. 15.3–15.5's SimpleTree) — a binary tree over the m
//    pools; every internal node counts the items in its *left* subtree,
//    so removeMin descends in O(log m) guided by bounded-decrements.
//
// Both are quiescently consistent, not linearizable — the book's point
// that relaxing the consistency contract buys structure-level parallelism.
// Pools are Treiber stacks (any concurrent pool works).

#pragma once

#include <atomic>
#include <cassert>

#include "tamp/core/backoff.hpp"
#include "tamp/core/cacheline.hpp"
#include <cstddef>
#include <vector>

#include "tamp/stacks/treiber.hpp"

namespace tamp {

template <typename T>
class LinearArrayPQ {
  public:
    using value_type = T;

    /// Priorities in [0, range); lower value = higher priority.
    explicit LinearArrayPQ(std::size_t range) : pools_(range) {}

    void add(const T& item, std::size_t priority) {
        assert(priority < pools_.size());
        pools_[priority].push(item);
    }

    /// Take an item of minimal priority; false when (quiescently) empty.
    bool try_remove_min(T& out) {
        for (auto& pool : pools_) {
            if (pool.try_pop(out)) return true;
        }
        return false;
    }

    std::size_t range() const { return pools_.size(); }

  private:
    std::vector<LockFreeStack<T>> pools_;
};

template <typename T>
class TreePQ {
  public:
    using value_type = T;

    /// `range` is rounded up to a power of two; priorities in [0, range).
    explicit TreePQ(std::size_t range) {
        range_ = 1;
        while (range_ < range) range_ *= 2;
        pools_ = std::vector<LockFreeStack<T>>(range_);
        counters_ =
            std::vector<Padded<std::atomic<long>>>(range_ - 1);  // internal
    }

    void add(const T& item, std::size_t priority) {
        assert(priority < range_);
        pools_[priority].push(item);
        // Climb leaf→root; increment every counter whose *left* subtree
        // contains the leaf (i.e. each time we arrive from the left).
        std::size_t node = (range_ - 1) + priority;  // heap index of leaf
        while (node != 0) {
            const std::size_t parent = (node - 1) / 2;
            if (node == 2 * parent + 1) {  // we are the left child
                counters_[parent].value.fetch_add(
                    1, std::memory_order_acq_rel);
            }
            node = parent;
        }
    }

    bool try_remove_min(T& out) {
        // Descend: a successful bounded-decrement says "an item remains on
        // the left"; otherwise go right.
        std::size_t node = 0;
        while (node < range_ - 1) {  // internal node
            if (bounded_get_and_decrement(counters_[node].value) > 0) {
                node = 2 * node + 1;
            } else {
                node = 2 * node + 2;
            }
        }
        const std::size_t leaf = node - (range_ - 1);
        // The pool may be transiently empty (an adder has bumped the
        // counters but not yet pushed): spin briefly, as the book's
        // deleteMin does on its bin.
        SpinWait w;
        for (int attempts = 0; attempts < 1000; ++attempts) {
            if (pools_[leaf].try_pop(out)) return true;
            w.spin();
        }
        return false;  // quiescently empty (or a racing taker got there)
    }

    std::size_t range() const { return range_; }

  private:
    /// getAndDecrement that never takes the counter below zero.
    static long bounded_get_and_decrement(std::atomic<long>& c) {
        long v = c.load(std::memory_order_acquire);
        while (v > 0 && !c.compare_exchange_weak(v, v - 1,
                                                 std::memory_order_acq_rel,
                                                 std::memory_order_acquire)) {
        }
        return v;
    }

    std::size_t range_ = 0;
    std::vector<LockFreeStack<T>> pools_;
    std::vector<Padded<std::atomic<long>>> counters_;
};

}  // namespace tamp
