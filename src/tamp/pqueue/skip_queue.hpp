// tamp/pqueue/skip_queue.hpp
//
// SkipQueue (§15.5, Figs. 15.7–15.9): the unbounded lock-free priority
// queue built from a priority skiplist.  removeMin runs along the bottom
// level and *logically* claims the first unclaimed node with one CAS on
// its `claimed` flag — the linearization point — then lazily extracts the
// corpse through the skiplist's ordinary remove machinery.  Contended
// minimums thus cost one CAS each plus amortized cleanup, and the
// structure is quiescently... in fact fully lock-free.
//
// Entries are (score, sequence) pairs — the sequence number makes every
// insertion unique, so duplicate scores are fine (FIFO-ish among equals,
// by insertion order of the tie-break).

#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "tamp/core/marked_ptr.hpp"
#include "tamp/lists/keyed.hpp"
#include "tamp/reclaim/domain.hpp"
#include "tamp/skiplist/lazy_skiplist.hpp"  // level machinery

namespace tamp {

template <typename T>
class SkipQueue {
    struct Entry {
        std::uint64_t score;
        std::uint64_t seq;
        T item;

        friend bool operator==(const Entry& a, const Entry& b) {
            return a.score == b.score && a.seq == b.seq;
        }
        friend bool operator<(const Entry& a, const Entry& b) {
            return a.score != b.score ? a.score < b.score : a.seq < b.seq;
        }
    };

    struct Node {
        NodeKind kind;
        Entry entry;
        std::size_t top_level;
        std::atomic<bool> claimed{false};  // "logically deleted" flag
        AtomicMarkedPtr<Node> next[kSkipListMaxLevel];

        Node(NodeKind k, Entry e, std::size_t top)
            : kind(k), entry(std::move(e)), top_level(top) {}
    };

  public:
    using value_type = T;

    SkipQueue() {
        tail_ = new Node(NodeKind::kTail, Entry{}, kSkipListMaxLevel - 1);
        head_ = new Node(NodeKind::kHead, Entry{}, kSkipListMaxLevel - 1);
        for (std::size_t l = 0; l < kSkipListMaxLevel; ++l) {
            head_->next[l].store(tail_, false);
            tail_->next[l].store(nullptr, false);
        }
    }

    ~SkipQueue() {
        Node* n = head_;
        while (n != nullptr) {
            Node* next = n->next[0].load(std::memory_order_relaxed).ptr();
            delete n;
            n = next;
        }
    }

    SkipQueue(const SkipQueue&) = delete;
    SkipQueue& operator=(const SkipQueue&) = delete;

    /// Insert `item` with priority `score` (lower = removed earlier).
    void add(const T& item, std::uint64_t score) {
        Entry e{score, seq_.fetch_add(1, std::memory_order_relaxed), item};
        const std::size_t top_level = random_skiplist_level();
        Node* preds[kSkipListMaxLevel];
        Node* succs[kSkipListMaxLevel];
        reclaim::ebr::guard guard;
        while (true) {
            find(e, preds, succs);  // entries are unique: never found
            Node* node = new Node(NodeKind::kItem, e, top_level);
            for (std::size_t l = 0; l <= top_level; ++l) {
                node->next[l].store(succs[l], false);
            }
            if (!preds[0]->next[0].compare_and_set(succs[0], node, false,
                                                   false)) {
                delete node;
                continue;
            }
            for (std::size_t l = 1; l <= top_level; ++l) {
                while (true) {
                    bool marked = false;
                    Node* expected = node->next[l].get(&marked);
                    if (marked) return;
                    if (expected != succs[l] &&
                        !node->next[l].compare_and_set(expected, succs[l],
                                                       false, false)) {
                        return;
                    }
                    if (preds[l]->next[l].compare_and_set(succs[l], node,
                                                          false, false)) {
                        break;
                    }
                    find(e, preds, succs);
                    if (succs[0] != node) return;
                }
            }
            return;
        }
    }

    /// Claim and extract the minimum; false when empty.
    bool try_remove_min(T& out) {
        reclaim::ebr::guard guard;
        Node* victim = find_and_mark_min();
        if (victim == nullptr) return false;
        out = victim->entry.item;
        remove_node(victim);
        return true;
    }

  private:

    /// Walk the bottom level; CAS-claim the first unclaimed, unmarked
    /// node (Fig. 15.9's findAndMarkMin).
    Node* find_and_mark_min() {
        Node* curr = head_->next[0].load().ptr();
        while (curr != nullptr && curr->kind != NodeKind::kTail) {
            bool marked = false;
            curr->next[0].get(&marked);
            if (!marked &&
                !curr->claimed.load(std::memory_order_acquire)) {
                bool expected = false;
                // One attempt per node: the walk moves on past a lost
                // claim, and a *spurious* failure here would skip an
                // unclaimed minimum — _strong is required for the min
                // guarantee.  tamp-lint: allow(cas-strong-loop)
                if (curr->claimed.compare_exchange_strong(
                        expected, true, std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    return curr;  // ours — the linearization point
                }
            }
            curr = curr->next[0].load().ptr();
        }
        return nullptr;
    }

    /// Standard multi-level logical-then-physical removal of a specific
    /// node we have claimed (cf. LockFreeSkipList::remove).
    void remove_node(Node* victim) {
        for (std::size_t l = victim->top_level; l >= 1; --l) {
            bool marked = false;
            Node* succ = victim->next[l].get(&marked);
            while (!marked) {
                victim->next[l].attempt_mark(succ, true);
                succ = victim->next[l].get(&marked);
            }
        }
        bool marked = false;
        Node* succ = victim->next[0].get(&marked);
        while (true) {
            const bool i_marked_it =
                victim->next[0].compare_and_set(succ, succ, false, true);
            succ = victim->next[0].get(&marked);
            if (i_marked_it) {
                Node* preds[kSkipListMaxLevel];
                Node* succs[kSkipListMaxLevel];
                find(victim->entry, preds, succs);  // snips all levels
                reclaim::ebr::retire(victim);
                return;
            }
            if (marked) return;  // somebody's find marked it?  (claimed
                                 // nodes are only removed by the claimer,
                                 // so this arm is defensive)
        }
    }

    bool find(const Entry& e, Node** preds, Node** succs) {
    retry:
        while (true) {
            Node* pred = head_;
            for (std::size_t l = kSkipListMaxLevel; l-- > 0;) {
                Node* curr = pred->next[l].load().ptr();
                while (true) {
                    bool marked = false;
                    Node* succ = curr->next[l].get(&marked);
                    while (marked) {
                        if (!pred->next[l].compare_and_set(curr, succ,
                                                           false, false)) {
                            goto retry;
                        }
                        curr = succ;
                        succ = curr->next[l].get(&marked);
                    }
                    if (precedes(curr, e)) {
                        pred = curr;
                        curr = succ;
                    } else {
                        break;
                    }
                }
                preds[l] = pred;
                succs[l] = curr;
            }
            return matches(succs[0], e);
        }
    }

    static bool precedes(const Node* n, const Entry& e) {
        if (n->kind == NodeKind::kHead) return true;
        if (n->kind == NodeKind::kTail) return false;
        return n->entry < e;
    }
    static bool matches(const Node* n, const Entry& e) {
        return n->kind == NodeKind::kItem && n->entry == e;
    }

    Node* head_;
    Node* tail_;
    std::atomic<std::uint64_t> seq_{0};
};

}  // namespace tamp
