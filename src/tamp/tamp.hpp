// tamp/tamp.hpp — the whole library.
//
// tamp (The Art of Multiprocessor Programming) implements the complete
// algorithm catalog of Herlihy & Shavit's book in C++20, one module per
// chapter family.  Include this for everything, or the per-module
// umbrella headers for just one family.
#pragma once

#include "tamp/barrier/barriers.hpp"
#include "tamp/check/check.hpp"
#include "tamp/consensus/consensus.hpp"
#include "tamp/consensus/universal.hpp"
#include "tamp/core/core.hpp"
#include "tamp/counting/counting.hpp"
#include "tamp/hash/hash.hpp"
#include "tamp/kv/kv.hpp"
#include "tamp/lists/lists.hpp"
#include "tamp/monitor/reentrant.hpp"
#include "tamp/monitor/rwlock.hpp"
#include "tamp/monitor/semaphore.hpp"
#include "tamp/mutex/mutex.hpp"
#include "tamp/obs/obs.hpp"
#include "tamp/pqueue/pqueue.hpp"
#include "tamp/queues/queues.hpp"
#include "tamp/reclaim/reclaim.hpp"
#include "tamp/registers/registers.hpp"
#include "tamp/skiplist/skiplist.hpp"
#include "tamp/spin/spin.hpp"
#include "tamp/stacks/stacks.hpp"
#include "tamp/steal/steal.hpp"
#include "tamp/stm/ofree_stm.hpp"
#include "tamp/stm/stm.hpp"
