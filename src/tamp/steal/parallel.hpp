// tamp/steal/parallel.hpp
//
// The Chapter 16 applications layer: the book motivates futures and work
// stealing with matrix operations (§16.1–16.2's MatrixTask examples) —
// split a matrix into quadrants, spawn the sub-tasks, join.  This header
// provides those patterns over WorkStealingPool:
//
//  * parallel_for  — index-range fan-out with recursive splitting (so
//    stealing moves *large* chunks, the property ABP deques optimize for);
//  * parallel_reduce — same skeleton, combining partial results;
//  * Matrix + add/multiply — the book's worked example, quadrant
//    decomposition and all.

#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "tamp/steal/pool.hpp"

namespace tamp {

/// Apply `body(i)` for i in [begin, end), splitting recursively so idle
/// workers steal the *upper half* of big ranges (classic fork/join shape).
template <typename Body>
void parallel_for(WorkStealingPool& pool, std::size_t begin,
                  std::size_t end, std::size_t grain, Body body) {
    if (begin >= end) return;
    if (end - begin <= grain) {
        for (std::size_t i = begin; i < end; ++i) body(i);
        return;
    }
    const std::size_t mid = begin + (end - begin) / 2;
    auto upper = pool.spawn([&pool, mid, end, grain, &body]() -> int {
        parallel_for(pool, mid, end, grain, body);
        return 0;
    });
    parallel_for(pool, begin, mid, grain, body);
    upper->get();  // helping join: never deadlocks on small pools
}

/// Reduce `map(i)` over [begin, end) with `combine`, fork/join style.
template <typename R, typename Map, typename Combine>
R parallel_reduce(WorkStealingPool& pool, std::size_t begin,
                  std::size_t end, std::size_t grain, R identity, Map map,
                  Combine combine) {
    if (begin >= end) return identity;
    if (end - begin <= grain) {
        R acc = identity;
        for (std::size_t i = begin; i < end; ++i) {
            acc = combine(acc, map(i));
        }
        return acc;
    }
    const std::size_t mid = begin + (end - begin) / 2;
    auto upper = pool.spawn([&]() -> R {
        return parallel_reduce(pool, mid, end, grain, identity, map,
                               combine);
    });
    const R lower =
        parallel_reduce(pool, begin, mid, grain, identity, map, combine);
    return combine(lower, upper->get());
}

/// A dense square matrix with the book's quadrant view (Fig. 16.3's
/// Matrix class): row/col offsets into shared backing storage, so
/// splitting allocates nothing.
class Matrix {
  public:
    explicit Matrix(std::size_t n)
        : n_(n), stride_(n),
          data_(std::make_shared<std::vector<double>>(n * n, 0.0)),
          row_(0), col_(0) {}

    double& at(std::size_t r, std::size_t c) {
        return (*data_)[(row_ + r) * stride_ + (col_ + c)];
    }
    double at(std::size_t r, std::size_t c) const {
        return (*data_)[(row_ + r) * stride_ + (col_ + c)];
    }

    std::size_t size() const { return n_; }

    /// Quadrant (i, j) of a power-of-two matrix — a *view*, not a copy.
    Matrix quadrant(std::size_t i, std::size_t j) const {
        Matrix q = *this;
        q.n_ = n_ / 2;
        q.row_ = row_ + i * (n_ / 2);
        q.col_ = col_ + j * (n_ / 2);
        return q;
    }

  private:
    std::size_t n_;
    std::size_t stride_;
    std::shared_ptr<std::vector<double>> data_;
    std::size_t row_, col_;
};

/// c = a + b by quadrant decomposition (the book's MatrixAddTask).
inline void parallel_matrix_add(WorkStealingPool& pool, const Matrix& a,
                                const Matrix& b, Matrix& c) {
    const std::size_t n = a.size();
    if (n <= 32 || (n & 1) != 0) {  // leaf: sequential
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t col = 0; col < n; ++col) {
                c.at(r, col) = a.at(r, col) + b.at(r, col);
            }
        }
        return;
    }
    std::vector<std::shared_ptr<FutureState<int>>> futures;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            if (i == 1 && j == 1) continue;  // do the last quadrant inline
            Matrix aq = a.quadrant(i, j), bq = b.quadrant(i, j);
            Matrix cq = c.quadrant(i, j);
            futures.push_back(pool.spawn(
                [&pool, aq, bq, cq]() mutable -> int {
                    parallel_matrix_add(pool, aq, bq, cq);
                    return 0;
                }));
        }
    }
    Matrix aq = a.quadrant(1, 1), bq = b.quadrant(1, 1);
    Matrix cq = c.quadrant(1, 1);
    parallel_matrix_add(pool, aq, bq, cq);
    for (auto& f : futures) f->get();
}

/// c = a · b, quadrant decomposition with a temporary for the second
/// product term (the book's MatrixMulTask: C_ij = A_i0·B_0j + A_i1·B_1j).
inline void parallel_matrix_multiply(WorkStealingPool& pool,
                                     const Matrix& a, const Matrix& b,
                                     Matrix& c) {
    const std::size_t n = a.size();
    if (n <= 32 || (n & 1) != 0) {
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t col = 0; col < n; ++col) {
                double sum = 0;
                for (std::size_t k = 0; k < n; ++k) {
                    sum += a.at(r, k) * b.at(k, col);
                }
                c.at(r, col) = sum;
            }
        }
        return;
    }
    Matrix term2(n);  // holds A_i1·B_1j
    std::vector<std::shared_ptr<FutureState<int>>> futures;
    for (std::size_t i = 0; i < 2; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            Matrix aq0 = a.quadrant(i, 0), bq0 = b.quadrant(0, j);
            Matrix cq = c.quadrant(i, j);
            futures.push_back(
                pool.spawn([&pool, aq0, bq0, cq]() mutable -> int {
                    parallel_matrix_multiply(pool, aq0, bq0, cq);
                    return 0;
                }));
            Matrix aq1 = a.quadrant(i, 1), bq1 = b.quadrant(1, j);
            Matrix tq = term2.quadrant(i, j);
            futures.push_back(
                pool.spawn([&pool, aq1, bq1, tq]() mutable -> int {
                    parallel_matrix_multiply(pool, aq1, bq1, tq);
                    return 0;
                }));
        }
    }
    for (auto& f : futures) f->get();
    // c += term2 (also in parallel).
    parallel_matrix_add(pool, c, term2, c);
}

}  // namespace tamp
