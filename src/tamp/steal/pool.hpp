// tamp/steal/pool.hpp
//
// A work-stealing executor (§16.1–§16.5, Fig. 16.16's WorkStealingThread)
// with futures: each worker runs
//
//     loop: pop own deque; else take injected work; else steal a random
//           victim; else back off
//
// which is the book's thread body verbatim, plus the termination/injection
// plumbing a usable executor needs.  `Future::get`, called on a worker,
// *helps* (runs tasks) instead of blocking — without this, fork/join on a
// pool with fewer threads than the recursion depth deadlocks, and the
// book's fib example would hang on a uniprocessor.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/core/cacheline.hpp"
#include "tamp/core/random.hpp"
#include "tamp/queues/ms_queue.hpp"
#include "tamp/steal/deque.hpp"

namespace tamp {

template <typename R>
class FutureState;

class WorkStealingPool {
    struct Task {
        std::function<void()> body;
    };

  public:
    explicit WorkStealingPool(
        std::size_t n_threads = std::thread::hardware_concurrency())
        : n_(n_threads == 0 ? 1 : n_threads), deques_(n_) {
        workers_.reserve(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            workers_.emplace_back([this, i] { worker_loop(i); });
        }
    }

    ~WorkStealingPool() {
        stop_.store(true, std::memory_order_release);
        for (auto& w : workers_) w.join();
        // Drain anything never executed.
        Task* t;
        while (injected_.try_dequeue(t)) delete t;
        for (auto& d : deques_) {
            Task* task;
            while (d.value.try_pop_bottom(task)) delete task;
        }
    }

    WorkStealingPool(const WorkStealingPool&) = delete;
    WorkStealingPool& operator=(const WorkStealingPool&) = delete;

    /// Schedule `fn`.  From a worker thread: pushed on its own deque
    /// (LIFO, cache-friendly, stealable from the top).  From outside:
    /// injected FIFO.
    void submit(std::function<void()> fn) {
        Task* task = new Task{std::move(fn)};
        pending_.fetch_add(1, std::memory_order_acq_rel);
        const int me = current_worker_;
        if (me >= 0 && current_pool_ == this) {
            deques_[static_cast<std::size_t>(me)].value.push_bottom(task);
        } else {
            injected_.enqueue(task);
        }
    }

    /// Schedule a callable and get a future for its result.
    template <typename F, typename R = std::invoke_result_t<F>>
    std::shared_ptr<FutureState<R>> spawn(F&& fn);

    /// Block (helping, if on a worker) until all submitted work is done.
    void wait_idle() {
        SpinWait w;
        while (pending_.load(std::memory_order_acquire) != 0) {
            if (!help_one()) w.spin();
        }
    }

    /// Run one pending task if any (used by helping waits).
    bool help_one() {
        Task* task = nullptr;
        const int me = current_worker_;
        if (me >= 0 && current_pool_ == this &&
            deques_[static_cast<std::size_t>(me)].value.try_pop_bottom(
                task)) {
            run(task);
            return true;
        }
        if (injected_.try_dequeue(task)) {
            run(task);
            return true;
        }
        // Steal from a random victim.
        const std::size_t start = tls_rng().next_below(
            static_cast<std::uint32_t>(n_));
        for (std::size_t k = 0; k < n_; ++k) {
            auto& victim = deques_[(start + k) % n_].value;
            if (victim.try_pop_top(task)) {
                run(task);
                return true;
            }
        }
        return false;
    }

    std::size_t workers() const { return n_; }

  private:
    void run(Task* task) {
        task->body();
        delete task;
        pending_.fetch_sub(1, std::memory_order_acq_rel);
    }

    void worker_loop(std::size_t index) {
        current_worker_ = static_cast<int>(index);
        current_pool_ = this;
        Backoff backoff(4, 1024);
        while (!stop_.load(std::memory_order_acquire)) {
            if (help_one()) {
                backoff.reset();
            } else {
                backoff.backoff();  // idle: retreat (yields inside)
            }
        }
        current_worker_ = -1;
        current_pool_ = nullptr;
    }

    std::size_t n_;
    std::vector<Padded<WorkStealingDeque<Task*>>> deques_;
    LockFreeQueue<Task*> injected_;
    std::vector<std::thread> workers_;
    // Workers poll stop_ while every submit/finish bumps pending_.
    alignas(kCacheLineSize) std::atomic<bool> stop_{false};
    alignas(kCacheLineSize) std::atomic<std::size_t> pending_{0};

    static thread_local int current_worker_;
    static thread_local WorkStealingPool* current_pool_;

    template <typename R>
    friend class FutureState;
};

inline thread_local int WorkStealingPool::current_worker_ = -1;
inline thread_local WorkStealingPool* WorkStealingPool::current_pool_ =
    nullptr;

/// Shared state of a spawned computation.  `get()` helps run tasks while
/// waiting when called on a worker thread (fork/join never deadlocks on a
/// small pool).
template <typename R>
class FutureState {
  public:
    explicit FutureState(WorkStealingPool& pool) : pool_(pool) {}

    R get() {
        SpinWait w;
        while (!ready_.load(std::memory_order_acquire)) {
            if (!pool_.help_one()) w.spin();
        }
        return *value_;
    }

    bool ready() const { return ready_.load(std::memory_order_acquire); }

    void fulfill(R value) {
        value_.emplace(std::move(value));
        ready_.store(true, std::memory_order_release);
    }

  private:
    WorkStealingPool& pool_;
    std::optional<R> value_;
    std::atomic<bool> ready_{false};
};

template <typename F, typename R>
std::shared_ptr<FutureState<R>> WorkStealingPool::spawn(F&& fn) {
    static_assert(!std::is_void_v<R>,
                  "use submit() for void tasks; futures carry values");
    auto state = std::make_shared<FutureState<R>>(*this);
    submit([state, fn = std::forward<F>(fn)]() mutable {
        state->fulfill(fn());
    });
    return state;
}

}  // namespace tamp
