// tamp/steal/deque.hpp
//
// Work-stealing double-ended queues (§16.5): the owner pushes and pops at
// the bottom without synchronization in the common case; thieves steal
// from the top with CAS.  "No interference if ends far apart; interference
// OK if queue is small" — the line the book's slides lift from exactly
// this structure.
//
//  * BoundedWorkStealingDeque — Arora–Blumofe–Plaxton (Fig. 16.14): a
//    fixed array, a plain bottom index, and a (top, stamp) pair in one
//    CAS word.  The stamp resolves the popBottom/popTop race on the last
//    element.
//  * WorkStealingDeque — the unbounded variant (§16.5.2), i.e. the
//    Chase–Lev circular-array deque: same protocol with a growable ring
//    and top as a monotonically increasing counter (which is its own ABA
//    protection, so no stamp is needed).
//
// Elements must be trivially copyable (in practice: task pointers).

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/core/marked_ptr.hpp"

namespace tamp {

template <typename T>
class BoundedWorkStealingDeque {
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit BoundedWorkStealingDeque(std::size_t capacity = 4096)
        : tasks_(capacity), top_(0, 0) {}

    /// Owner only.  False when full.
    bool try_push_bottom(T task) {
        const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
        std::uint16_t stamp;
        const std::uint64_t t = top_.get(&stamp);
        if (b - t >= tasks_.size()) return false;
        tasks_[b % tasks_.size()].store(task, std::memory_order_relaxed);
        // Publish the slot before advancing bottom for thieves.
        bottom_.store(b + 1, std::memory_order_seq_cst);
        return true;
    }

    /// Thief.  False when empty or when the CAS race was lost.
    bool try_pop_top(T& out) {
        std::uint16_t stamp;
        const std::uint64_t t = top_.get(&stamp);
        const std::uint64_t b = bottom_.load(std::memory_order_seq_cst);
        if (b <= t) return false;
        T task = tasks_[t % tasks_.size()].load(std::memory_order_relaxed);
        if (top_.compare_and_set(t, t + 1, stamp,
                                 static_cast<std::uint16_t>(stamp + 1))) {
            out = task;
            return true;
        }
        return false;
    }

    /// Owner only.
    bool try_pop_bottom(T& out) {
        std::uint64_t b = bottom_.load(std::memory_order_relaxed);
        std::uint16_t stamp;
        {
            // Fast empty check.
            const std::uint64_t t = top_.get(&stamp);
            if (b <= t) return false;
        }
        b -= 1;
        bottom_.store(b, std::memory_order_seq_cst);
        T task = tasks_[b % tasks_.size()].load(std::memory_order_relaxed);
        const std::uint64_t t = top_.get(&stamp);
        if (b > t) {
            out = task;  // no thief can reach this slot
            return true;
        }
        if (b == t) {
            // Exactly one element: fight the thieves for it.  Win or
            // lose, the deque resets to empty at index t+1.
            const bool won = top_.compare_and_set(
                t, t + 1, stamp, static_cast<std::uint16_t>(stamp + 1));
            bottom_.store(t + 1, std::memory_order_seq_cst);
            if (won) {
                out = task;
                return true;
            }
            return false;
        }
        // b < t: a thief already took it.
        bottom_.store(t, std::memory_order_seq_cst);
        return false;
    }

    bool empty() const {
        std::uint16_t stamp;
        return bottom_.load(std::memory_order_acquire) <= top_.get(&stamp);
    }

  private:
    std::vector<std::atomic<T>> tasks_;
    std::atomic<std::uint64_t> bottom_{0};
    AtomicStampedIndex top_;
};

/// Chase–Lev unbounded deque.
template <typename T>
class WorkStealingDeque {
    static_assert(std::is_trivially_copyable_v<T>);

    struct Ring {
        std::size_t capacity;
        std::unique_ptr<std::atomic<T>[]> slots;

        explicit Ring(std::size_t cap)
            : capacity(cap), slots(new std::atomic<T>[cap]) {}
        void put(std::uint64_t i, T v) {
            slots[i % capacity].store(v, std::memory_order_relaxed);
        }
        T get(std::uint64_t i) const {
            return slots[i % capacity].load(std::memory_order_relaxed);
        }
    };

  public:
    explicit WorkStealingDeque(std::size_t initial_capacity = 64) {
        ring_.store(new Ring(initial_capacity), std::memory_order_relaxed);
    }

    ~WorkStealingDeque() {
        delete ring_.load(std::memory_order_relaxed);
        for (Ring* r : old_rings_) delete r;
    }

    WorkStealingDeque(const WorkStealingDeque&) = delete;
    WorkStealingDeque& operator=(const WorkStealingDeque&) = delete;

    /// Owner only; grows as needed.
    void push_bottom(T task) {
        const std::uint64_t b = bottom_.load(std::memory_order_relaxed);
        const std::uint64_t t = top_.load(std::memory_order_acquire);
        Ring* ring = ring_.load(std::memory_order_relaxed);
        if (b - t >= ring->capacity - 1) {
            ring = grow(ring, b, t);
        }
        ring->put(b, task);
        bottom_.store(b + 1, std::memory_order_release);
    }

    /// Thief.
    bool try_pop_top(T& out) {
        const std::uint64_t t = top_.load(std::memory_order_acquire);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::uint64_t b = bottom_.load(std::memory_order_acquire);
        if (b <= t) return false;
        Ring* ring = ring_.load(std::memory_order_acquire);
        T task = ring->get(t);
        // The CAS both claims slot t and validates that the ring we read
        // from still covered it.
        std::uint64_t expected = t;
        if (!top_.compare_exchange_strong(expected, t + 1,
                                          std::memory_order_seq_cst,
                                          std::memory_order_relaxed)) {
            return false;
        }
        out = task;
        return true;
    }

    /// Owner only.
    bool try_pop_bottom(T& out) {
        const std::uint64_t b0 = bottom_.load(std::memory_order_relaxed);
        if (b0 == top_.load(std::memory_order_acquire)) return false;
        const std::uint64_t b = b0 - 1;
        bottom_.store(b, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        const std::uint64_t t = top_.load(std::memory_order_relaxed);
        Ring* ring = ring_.load(std::memory_order_relaxed);
        if (t < b) {
            out = ring->get(b);  // plenty left: no race possible
            return true;
        }
        if (t == b) {
            // Last element: race thieves via top.
            T task = ring->get(b);
            std::uint64_t expected = t;
            const bool won = top_.compare_exchange_strong(
                expected, t + 1, std::memory_order_seq_cst,
                std::memory_order_relaxed);
            bottom_.store(b + 1, std::memory_order_relaxed);
            if (won) {
                out = task;
                return true;
            }
            return false;
        }
        // t > b: already empty; undo.
        bottom_.store(b + 1, std::memory_order_relaxed);
        return false;
    }

    bool empty() const {
        return bottom_.load(std::memory_order_acquire) <=
               top_.load(std::memory_order_acquire);
    }

  private:
    Ring* grow(Ring* old, std::uint64_t b, std::uint64_t t) {
        Ring* bigger = new Ring(old->capacity * 2);
        for (std::uint64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
        ring_.store(bigger, std::memory_order_release);
        // The old ring may still be read by in-flight thieves; it is kept
        // until destruction (rings double, so total waste < 2× live).
        old_rings_.push_back(old);
        return bigger;
    }

    // The owner hammers bottom_ while thieves CAS top_ (§16.5 discusses
    // exactly this contention): give each index its own line.
    alignas(kCacheLineSize) std::atomic<Ring*> ring_;
    alignas(kCacheLineSize) std::atomic<std::uint64_t> bottom_{0};
    alignas(kCacheLineSize) std::atomic<std::uint64_t> top_{0};
    std::vector<Ring*> old_rings_;  // owner-only
};

}  // namespace tamp
