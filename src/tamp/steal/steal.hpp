// tamp/steal/steal.hpp — umbrella for Chapter 16: work-stealing deques and
// the executor/futures built on them.
#pragma once

#include "tamp/steal/deque.hpp"
#include "tamp/steal/parallel.hpp"
#include "tamp/steal/pool.hpp"
