// tamp/consensus/universal.hpp
//
// Chapter 6: the universality of consensus.  Given n-thread consensus
// objects (here CAS-based PointerConsensus), *any* deterministic
// sequential object gets a linearizable concurrent implementation:
// threads agree, one operation at a time, on the next node of a shared
// log, then compute responses by replaying the log privately.
//
//   * LockFreeUniversal (Fig. 6.8) — some thread always wins the next
//     consensus, but a particular thread can lose forever.
//   * WaitFreeUniversal (Fig. 6.12) — adds the announce/helping protocol:
//     thread i's operation is guaranteed a slot by the time the log grows
//     n nodes, because the thread deciding slot k helps announce[k mod n].
//
// The sequential object `Obj` must be default-constructible and
// deterministic, with `Resp apply(const Inv&)`.  Log nodes are never
// unlinked (later operations replay from the start), so the construction
// owns them for its lifetime — the honest C++ rendering of what the
// book's version quietly delegates to the JVM's GC.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <memory>
#include <mutex>
#include <vector>

#include "tamp/consensus/consensus.hpp"
#include "tamp/core/backoff.hpp"
#include "tamp/core/cacheline.hpp"
#include "tamp/sim/atomic.hpp"
#include "tamp/sim/hooks.hpp"

namespace tamp {

template <typename Obj, typename Inv, typename Resp>
class LockFreeUniversal {
  protected:
    struct Node {
        Inv invoc{};
        PointerConsensus<Node> decide_next;
        tamp::atomic<Node*> next{nullptr};
        tamp::atomic<std::uint64_t> seq{0};  // 0 = not yet threaded
    };

  public:
    explicit LockFreeUniversal(std::size_t n) : n_(n), head_(n) {
        tail_ = allocate();
        tail_->seq.store(1, std::memory_order_relaxed);
        for (auto& h : head_) h.value.store(tail_, std::memory_order_relaxed);
    }

    /// Linearizable apply: thread `me` threads `invoc` onto the log and
    /// returns the response the sequential object gives at that point.
    Resp apply(std::size_t me, const Inv& invoc) {
        assert(me < n_);
        sim::op_scope op("LockFreeUniversal::apply");
        Node* prefer = allocate();
        prefer->invoc = invoc;
        while (prefer->seq.load(std::memory_order_acquire) == 0) {
            Node* before = max_head();
            Node* after = before->decide_next.decide(prefer);
            before->next.store(after, std::memory_order_release);
            after->seq.store(before->seq.load(std::memory_order_relaxed) + 1,
                             std::memory_order_release);
            head_[me].value.store(after, std::memory_order_release);
        }
        return replay_to(prefer);
    }

  protected:
    Node* allocate() {
        auto owned = std::make_unique<Node>();
        Node* raw = owned.get();
        std::lock_guard<std::mutex> guard(arena_mu_);
        arena_.push_back(std::move(owned));
        return raw;
    }

    /// The latest node any thread has observed at the log's end.
    Node* max_head() {
        Node* best = head_[0].value.load(std::memory_order_acquire);
        for (std::size_t i = 1; i < n_; ++i) {
            Node* h = head_[i].value.load(std::memory_order_acquire);
            if (h->seq.load(std::memory_order_acquire) >
                best->seq.load(std::memory_order_acquire)) {
                best = h;
            }
        }
        return best;
    }

    /// Replay the log from the beginning up to and including `target` on a
    /// private copy of the object; return `target`'s response.
    Resp replay_to(Node* target) {
        Obj object{};
        Node* current = tail_->next.load(std::memory_order_acquire);
        while (current != target) {
            object.apply(current->invoc);
            current = current->next.load(std::memory_order_acquire);
            assert(current != nullptr && "log must reach the target node");
        }
        return object.apply(target->invoc);
    }

    std::size_t n_;
    Node* tail_;  // sentinel, seq == 1
    std::vector<Padded<tamp::atomic<Node*>>> head_;
    std::mutex arena_mu_;
    std::vector<std::unique_ptr<Node>> arena_;
};

template <typename Obj, typename Inv, typename Resp>
class WaitFreeUniversal : public LockFreeUniversal<Obj, Inv, Resp> {
    using Base = LockFreeUniversal<Obj, Inv, Resp>;
    using Node = typename Base::Node;

  public:
    explicit WaitFreeUniversal(std::size_t n) : Base(n), announce_(n) {
        for (auto& a : announce_) {
            // Announce slots start at the (already threaded) sentinel so
            // helpers never chase a null.
            a.value.store(this->tail_, std::memory_order_relaxed);
        }
    }

    Resp apply(std::size_t me, const Inv& invoc) {
        assert(me < this->n_);
        sim::op_scope op("WaitFreeUniversal::apply");
        Node* mine = this->allocate();
        mine->invoc = invoc;
        announce_[me].value.store(mine, std::memory_order_release);
        this->head_[me].value.store(this->max_head(),
                                    std::memory_order_release);
        while (mine->seq.load(std::memory_order_acquire) == 0) {
            Node* before =
                this->head_[me].value.load(std::memory_order_acquire);
            // Help the thread whose turn it is at the next slot: slot
            // before.seq+1 is reserved for thread (before.seq+1) mod n if
            // that thread has a pending announcement.
            const std::uint64_t next_seq =
                before->seq.load(std::memory_order_acquire) + 1;
            Node* help =
                announce_[next_seq % this->n_].value.load(
                    std::memory_order_acquire);
            Node* prefer =
                (help->seq.load(std::memory_order_acquire) == 0) ? help
                                                                 : mine;
            Node* after = before->decide_next.decide(prefer);
            before->next.store(after, std::memory_order_release);
            after->seq.store(
                before->seq.load(std::memory_order_relaxed) + 1,
                std::memory_order_release);
            this->head_[me].value.store(after, std::memory_order_release);
        }
        this->head_[me].value.store(mine, std::memory_order_release);
        return this->replay_to(mine);
    }

  private:
    std::vector<Padded<tamp::atomic<Node*>>> announce_;
};

}  // namespace tamp
