// tamp/consensus/consensus.hpp
//
// Chapter 5: the relative power of synchronization primitives, made
// executable.  A consensus object lets n threads each propose a value and
// all agree on one proposal.  The chapter ranks primitives by the largest
// n for which they solve consensus:
//
//   atomic registers ........ 1   (Theorem 5.2.1 — no protocol here)
//   FIFO queue .............. 2   (QueueConsensus below)
//   compareAndSet ........... ∞   (CASConsensus below)
//
// The protocols follow the book's template (Fig. 5.7): propose() announces
// the caller's input in a per-thread slot; decide() runs the primitive-
// specific agreement and returns the winner's announced input.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <vector>

#include "tamp/core/cacheline.hpp"
#include "tamp/sim/atomic.hpp"

namespace tamp {

/// Shared base (Fig. 5.7): the announce array.  `T` must be default-
/// constructible; slots are written once by their owners before decide().
template <typename T>
class ConsensusProtocol {
  public:
    explicit ConsensusProtocol(std::size_t n) : announce_(n) {}

    /// Thread `me` makes its input visible to potential winners' readers.
    void propose(std::size_t me, const T& value) {
        assert(me < announce_.size());
        announce_[me].value = value;
        // Publish before any decide() step can name `me` the winner.
        std::atomic_thread_fence(std::memory_order_seq_cst);
    }

  protected:
    const T& announced(std::size_t i) const { return announce_[i].value; }
    std::size_t capacity() const { return announce_.size(); }

  private:
    std::vector<Padded<T>> announce_;
};

/// Two-thread consensus from a FIFO queue (Fig. 5.10).  The queue starts
/// holding WIN then LOSE; whoever dequeues WIN decides its own value, the
/// other adopts the winner's.  The "queue" is a prefilled wait-free
/// dequeue-only pool — exactly the object the proof consumes (two dequeues
/// suffice), realized with one fetch-and-increment over the prefilled
/// array.
template <typename T>
class QueueConsensus : public ConsensusProtocol<T> {
  public:
    QueueConsensus() : ConsensusProtocol<T>(2) {}

    /// Both threads call decide(me, v); both return the same value, which
    /// is one of the proposals (validity).
    T decide(std::size_t me, const T& value) {
        assert(me < 2);
        this->propose(me, value);
        const std::size_t ticket =
            next_.fetch_add(1, std::memory_order_acq_rel);
        assert(ticket < 2 && "QueueConsensus object is single-shot");
        if (ticket == 0) {
            return this->announced(me);  // dequeued WIN
        }
        return this->announced(1 - me);  // dequeued LOSE: adopt the other
    }

  private:
    tamp::atomic<std::size_t> next_{0};
};

/// N-thread consensus from compareAndSet (§5.8, Fig. 5.13).  The first
/// successful CAS writes the winner's id; everyone reads the winner's
/// announced input.
template <typename T>
class CASConsensus : public ConsensusProtocol<T> {
  public:
    static constexpr int kNoWinner = -1;

    explicit CASConsensus(std::size_t n) : ConsensusProtocol<T>(n) {}

    T decide(std::size_t me, const T& value) {
        assert(me < this->capacity());
        this->propose(me, value);
        int expected = kNoWinner;
        first_.compare_exchange_strong(expected, static_cast<int>(me),
                                       std::memory_order_acq_rel,
                                       std::memory_order_acquire);
        // Either we won (expected stays kNoWinner) or `expected` now holds
        // the winner; in both cases first_ is final.
        return this->announced(
            static_cast<std::size_t>(first_.load(std::memory_order_acquire)));
    }

    /// The winner's id, or kNoWinner before any decide().
    int winner() const { return first_.load(std::memory_order_acquire); }

  private:
    tamp::atomic<int> first_{kNoWinner};
};

/// Two-thread consensus from getAndSet/swap (§5.6: "RMW registers whose
/// operations belong to a non-trivial common family solve two-thread
/// consensus").  The first thread to swap its id in wins; the other reads
/// the winner's id out of the cell.
template <typename T>
class SwapConsensus : public ConsensusProtocol<T> {
    static constexpr int kFresh = -1;

  public:
    SwapConsensus() : ConsensusProtocol<T>(2) {}

    T decide(std::size_t me, const T& value) {
        assert(me < 2);
        this->propose(me, value);
        const int prior = cell_.exchange(static_cast<int>(me),
                                         std::memory_order_acq_rel);
        const std::size_t winner =
            prior == kFresh ? me : static_cast<std::size_t>(prior);
        return this->announced(winner);
    }

  private:
    tamp::atomic<int> cell_{kFresh};
};

/// Pointer consensus used by the universal constructions: first CAS from
/// null wins; decide returns the winning pointer.  (The announce array is
/// unnecessary when the proposal *is* the published pointer.)
template <typename P>
class PointerConsensus {
  public:
    P* decide(P* proposal) {
        P* expected = nullptr;
        if (winner_.compare_exchange_strong(expected, proposal,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
            return proposal;
        }
        return expected;
    }

    P* winner() const { return winner_.load(std::memory_order_acquire); }

  private:
    tamp::atomic<P*> winner_{nullptr};
};

}  // namespace tamp
