// tamp/registers/simulated.hpp
//
// The substrate for Chapter 4 ("Foundations of Shared Memory"): register
// flavours and a deliberately weak *simulated* safe register.
//
// The chapter builds a tower from single-reader single-writer *safe*
// boolean registers all the way to multi-reader multi-writer *atomic*
// registers.  Real hardware only sells the top of the tower (every aligned
// machine word is an atomic register), so to demonstrate — and, more
// importantly, to *test* — that the constructions tolerate weak cells, we
// provide SimulatedSafeRegister: a register that honours safe semantics
// and nothing more.  A read that overlaps a write returns garbage, exactly
// the adversary the book's proofs quantify over.
//
// The atomics inside each simulated register are the *components of one
// logical cell* (version word beside the value it guards), always read
// and written together by design — padding them apart would misrepresent
// the very cell being simulated.  tamp-lint: allow-file(atomic-align)

#pragma once

#include <atomic>
#include <concepts>
#include <cstdint>

#include "tamp/core/random.hpp"

namespace tamp {

/// What every register in this module looks like: single-location read
/// and write.  Reader/writer identity, where a construction needs it, is
/// passed explicitly (the book's ThreadID).
template <typename R, typename T>
concept RegisterOf = requires(R r, T v) {
    { r.read() } -> std::convertible_to<T>;
    { r.write(v) };
};

/// An SRSW *safe* register (§4.1): if a read does not overlap a write it
/// returns the most recently written value; if it does overlap, it may
/// return anything in the type's range.  We simulate the "anything" with
/// a PRNG, so tests of higher layers face the worst-case adversary rather
/// than the benign behaviour real hardware would give.
///
/// `T` must be trivially copyable; the flicker draws uniformly from its
/// object representation.
template <typename T>
class SimulatedSafeRegister {
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit SimulatedSafeRegister(T init = T{}) {
        value_.store(init, std::memory_order_relaxed);
    }

    // Containers of registers are assembled single-threaded before being
    // shared; moving copies the quiescent value and is NOT thread-safe.
    SimulatedSafeRegister(SimulatedSafeRegister&& other) noexcept {
        value_.store(other.value_.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    }

    void write(T v) {
        // Odd version = write in progress.  seq_cst keeps the version and
        // payload updates ordered for the overlap detector below.  The
        // payload itself is a relaxed atomic: *physically* race-free (we
        // promise TSan-cleanliness), while the version check keeps the
        // *semantics* no stronger than safe.
        version_.fetch_add(1, std::memory_order_seq_cst);
        value_.store(v, std::memory_order_relaxed);
        version_.fetch_add(1, std::memory_order_seq_cst);
    }

    T read() {
        const std::uint64_t v1 = version_.load(std::memory_order_seq_cst);
        T result = value_.load(std::memory_order_relaxed);
        const std::uint64_t v2 = version_.load(std::memory_order_seq_cst);
        if ((v1 & 1) != 0 || v1 != v2) {
            // Overlapping write: safe semantics let us return anything.
            return flicker();
        }
        return result;
    }

  private:
    T flicker() {
        T junk;
        auto* bytes = reinterpret_cast<unsigned char*>(&junk);
        for (std::size_t i = 0; i < sizeof(T); ++i) {
            bytes[i] = static_cast<unsigned char>(rng_.next());
        }
        return junk;
    }

    std::atomic<std::uint64_t> version_{0};
    std::atomic<T> value_{};
    XorShift64 rng_{XorShift64::from_this_thread()};
};

// Boolean flicker should still be a valid bool.
template <>
inline bool SimulatedSafeRegister<bool>::flicker() {
    return (rng_.next() & 1) != 0;
}

/// An SRSW *regular* register (§4.1.2): a read overlapping writes may
/// return the old value or any concurrently written one — but never
/// garbage, and never an older value than the last complete write.  The
/// simulation keeps the previous value beside the current one and, on
/// overlap, returns one of the two at random: a strict subset of what
/// regular semantics permit, and strictly more adversarial than hardware.
/// This is the cell the Chapter 4 atomic constructions are tested against.
template <typename T>
class SimulatedRegularRegister {
    static_assert(std::is_trivially_copyable_v<T>);

  public:
    explicit SimulatedRegularRegister(T init = T{}) {
        prev_.store(init, std::memory_order_relaxed);
        curr_.store(init, std::memory_order_relaxed);
    }

    // Setup-time only; not thread-safe (see SimulatedSafeRegister).
    SimulatedRegularRegister(SimulatedRegularRegister&& other) noexcept {
        prev_.store(other.prev_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        curr_.store(other.curr_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    }

    void write(T v) {
        prev_.store(curr_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
        version_.fetch_add(1, std::memory_order_seq_cst);  // now odd
        curr_.store(v, std::memory_order_relaxed);
        version_.fetch_add(1, std::memory_order_seq_cst);  // even again
    }

    T read() {
        const std::uint64_t v1 = version_.load(std::memory_order_seq_cst);
        const T c = curr_.load(std::memory_order_relaxed);
        const T p = prev_.load(std::memory_order_relaxed);
        const std::uint64_t v2 = version_.load(std::memory_order_seq_cst);
        if ((v1 & 1) != 0 || v1 != v2) {
            return (rng_.next() & 1) ? p : c;  // old or new, adversarially
        }
        return c;
    }

  private:
    std::atomic<std::uint64_t> version_{0};
    std::atomic<T> prev_{};
    std::atomic<T> curr_{};
    XorShift64 rng_{XorShift64::from_this_thread()};
};

/// An honest atomic register — the hardware's own cell, wrapped in the
/// module's interface so constructions can be instantiated over either a
/// weak simulated base or the real thing.
template <typename T>
class AtomicRegister {
  public:
    explicit AtomicRegister(T init = T{}) : cell_(init) {}

    // Setup-time only; not thread-safe (see SimulatedSafeRegister).
    AtomicRegister(AtomicRegister&& other) noexcept
        : cell_(other.cell_.load(std::memory_order_relaxed)) {}

    void write(T v) { cell_.store(v, std::memory_order_seq_cst); }
    T read() { return cell_.load(std::memory_order_seq_cst); }

  private:
    std::atomic<T> cell_;
};

static_assert(RegisterOf<SimulatedSafeRegister<bool>, bool>);
static_assert(RegisterOf<AtomicRegister<int>, int>);

}  // namespace tamp
