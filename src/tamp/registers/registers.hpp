// tamp/registers/registers.hpp — umbrella for Chapter 4: simulated weak
// registers, the register-construction tower, and atomic snapshots.
#pragma once

#include "tamp/registers/constructions.hpp"
#include "tamp/registers/simulated.hpp"
#include "tamp/registers/snapshot.hpp"
