// tamp/registers/constructions.hpp
//
// The Chapter 4 register tower (§4.2): starting from single-reader
// single-writer *safe* boolean cells, construct in turn
//
//   1. MRSW safe boolean        (Fig. 4.6)  — one SRSW cell per reader
//   2. MRSW regular boolean     (Fig. 4.7)  — write only on change
//   3. MRSW regular M-valued    (Fig. 4.8)  — unary encoding
//   4. SRSW atomic              (Fig. 4.9)  — timestamps
//   5. MRSW atomic              (Fig. 4.10) — n×n table of SRSW atomics
//   6. MRMW atomic              (Fig. 4.12) — one row per writer
//
// Every construction is templated over its cell type, so the tests can
// instantiate the tower over the *simulated* weak registers (the worst
// adversary the proofs allow) as well as over honest hardware cells.
//
// Reader identity is explicit (`read(me)`), writer identity likewise for
// the MRMW register — the book's ThreadID made visible in the signature.

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "tamp/registers/simulated.hpp"

namespace tamp {

// --------------------------------------------------------------------------
// 1. MRSW safe boolean from SRSW safe boolean (Fig. 4.6).
// --------------------------------------------------------------------------
template <typename Cell = SimulatedSafeRegister<bool>>
class SafeBooleanMRSW {
  public:
    explicit SafeBooleanMRSW(std::size_t readers, bool init = false)
        : cells_(readers) {
        for (auto& c : cells_) c.write(init);
    }

    /// Single writer: update every reader's private cell.
    void write(bool v) {
        for (auto& c : cells_) c.write(v);
    }

    /// Reader `me` consults only its own cell — no reader-reader races.
    bool read(std::size_t me) {
        assert(me < cells_.size());
        return cells_[me].read();
    }

    std::size_t readers() const { return cells_.size(); }

  private:
    std::vector<Cell> cells_;
};

// --------------------------------------------------------------------------
// 2. MRSW regular boolean from MRSW safe boolean (Fig. 4.7).
//
// A safe boolean read during an overlapping write returns *some* boolean;
// if the register is only physically written when the value changes, that
// arbitrary boolean is necessarily either the old or the new value — which
// is exactly regularity.
// --------------------------------------------------------------------------
template <typename Base = SafeBooleanMRSW<>>
class RegularBooleanMRSW {
  public:
    explicit RegularBooleanMRSW(std::size_t readers, bool init = false)
        : old_(init), base_(readers, init) {}

    void write(bool v) {
        if (v != old_) {  // writer-private state: no synchronization needed
            base_.write(v);
            old_ = v;
        }
    }

    bool read(std::size_t me) { return base_.read(me); }

  private:
    bool old_;
    Base base_;
};

// --------------------------------------------------------------------------
// 3. MRSW regular M-valued from MRSW regular boolean (Fig. 4.8).
//
// Unary encoding: bit[x] set means "value is x".  The writer raises the new
// bit before lowering the lower ones (descending), so an ascending scan
// always finds a bit that was set by the last-complete or a concurrent
// write.
// --------------------------------------------------------------------------
template <typename BoolReg = RegularBooleanMRSW<>>
class RegularMValuedMRSW {
  public:
    RegularMValuedMRSW(std::size_t readers, std::size_t range,
                       std::size_t init = 0)
        : range_(range) {
        assert(init < range);
        bits_.reserve(range);
        for (std::size_t i = 0; i < range; ++i) {
            bits_.emplace_back(readers, i == init);
        }
    }

    void write(std::size_t x) {
        assert(x < range_);
        bits_[x].write(true);
        for (std::size_t i = x; i-- > 0;) bits_[i].write(false);
    }

    std::size_t read(std::size_t me) {
        for (std::size_t i = 0; i < range_; ++i) {
            if (bits_[i].read(me)) return i;
        }
        // Unreachable per Lemma 4.2.3; a defensive answer beats UB.
        return range_ - 1;
    }

  private:
    std::size_t range_;
    std::vector<BoolReg> bits_;
};

// --------------------------------------------------------------------------
// Timestamped values, packed so one cell write is one physical write.
//
// The book's StampedValue<T> rides on the GC'd heap; we pack stamp (high
// 32 bits) and value (low 32) into a uint64 so that the underlying cell —
// simulated-regular or hardware-atomic — carries the pair indivisibly.
// Stamps are per-writer sequence numbers; 2^32 writes per register
// comfortably exceeds any test or benchmark horizon.
// --------------------------------------------------------------------------
struct Stamped {
    static constexpr std::uint64_t pack(std::uint32_t stamp,
                                        std::int32_t value) {
        return (static_cast<std::uint64_t>(stamp) << 32) |
               static_cast<std::uint32_t>(value);
    }
    static constexpr std::uint32_t stamp(std::uint64_t cell) {
        return static_cast<std::uint32_t>(cell >> 32);
    }
    static constexpr std::int32_t value(std::uint64_t cell) {
        return static_cast<std::int32_t>(
            static_cast<std::uint32_t>(cell & 0xFFFFFFFFull));
    }
};

// --------------------------------------------------------------------------
// 4. SRSW atomic from SRSW regular (Fig. 4.9).
//
// The regular register may "flicker" between old and new during overlap; a
// reader that remembers the highest-stamped pair it has returned, and never
// returns a lower-stamped one, turns the flicker into atomicity.
// --------------------------------------------------------------------------
template <typename Cell = SimulatedRegularRegister<std::uint64_t>>
class AtomicSRSW {
  public:
    explicit AtomicSRSW(std::int32_t init = 0)
        : cell_(Stamped::pack(0, init)), last_read_(Stamped::pack(0, init)) {}

    void write(std::int32_t v) {
        last_stamp_ += 1;  // writer-private
        cell_.write(Stamped::pack(last_stamp_, v));
    }

    std::int32_t read() {
        const std::uint64_t seen = cell_.read();
        // Return the later of (what the cell shows, what we last returned).
        if (Stamped::stamp(seen) > Stamped::stamp(last_read_)) {
            last_read_ = seen;  // reader-private
        }
        return Stamped::value(last_read_);
    }

  private:
    Cell cell_;
    std::uint32_t last_stamp_ = 0;  // writer-side shadow of the stamp
    std::uint64_t last_read_;       // reader-side memory
};

// --------------------------------------------------------------------------
// 5. MRSW atomic from SRSW atomic (Fig. 4.10).
//
// An n×n table: the writer stamps each value and writes it down the
// diagonal; reader `me` takes the freshest of column `me`, then gossips it
// across row `me` so no later reader can observe an older value — the
// construction's defence against the new/old inversion of Fig. 4.5.
// --------------------------------------------------------------------------
template <typename Cell = AtomicRegister<std::uint64_t>>
class AtomicMRSW {
  public:
    explicit AtomicMRSW(std::size_t readers, std::int32_t init = 0)
        : n_(readers) {
        table_.reserve(n_ * n_);
        for (std::size_t i = 0; i < n_ * n_; ++i) {
            table_.emplace_back(Stamped::pack(0, init));
        }
    }

    void write(std::int32_t v) {
        last_stamp_ += 1;
        const std::uint64_t stamped = Stamped::pack(last_stamp_, v);
        for (std::size_t i = 0; i < n_; ++i) at(i, i).write(stamped);
    }

    std::int32_t read(std::size_t me) {
        assert(me < n_);
        std::uint64_t best = at(me, me).read();
        for (std::size_t i = 0; i < n_; ++i) {
            const std::uint64_t other = at(i, me).read();
            if (Stamped::stamp(other) > Stamped::stamp(best)) best = other;
        }
        for (std::size_t j = 0; j < n_; ++j) {
            if (j == me) continue;
            at(me, j).write(best);
        }
        return Stamped::value(best);
    }

  private:
    // Cell (i, j): written by reader i (row), read by reader j (column);
    // the diagonal is written by the single writer.  Strictly SRSW.
    Cell& at(std::size_t i, std::size_t j) { return table_[i * n_ + j]; }

    std::size_t n_;
    std::uint32_t last_stamp_ = 0;
    std::vector<Cell> table_;
};

// --------------------------------------------------------------------------
// 6. MRMW atomic from MRSW atomic (Fig. 4.12).
//
// One MRSW register per writer.  A writer reads every row, takes the
// maximum stamp it saw plus one, and writes to its own row; a reader takes
// the lexicographically greatest (stamp, row) pair.  Bakery-style labels,
// applied to registers.
// --------------------------------------------------------------------------
/// Each row is a register holding a packed (stamp, value) word that every
/// thread may read but only its owner writes — i.e. an MRSW atomic register
/// of uint64.  The default instantiates rows directly on hardware cells;
/// the tower above shows how such a register would itself be built from
/// weaker parts (the book's layering, which we demonstrate but do not force
/// the MRMW register to pay O(n²) for on every access).
template <typename RowCell = AtomicRegister<std::uint64_t>>
class AtomicMRMW {
  public:
    explicit AtomicMRMW(std::size_t threads, std::int32_t init = 0)
        : n_(threads), stamps_(threads, 0) {
        rows_.reserve(n_);
        for (std::size_t i = 0; i < n_; ++i) {
            rows_.emplace_back(Stamped::pack(0, init));
        }
    }

    void write(std::size_t me, std::int32_t v) {
        assert(me < n_);
        std::uint32_t max_stamp = 0;
        for (std::size_t i = 0; i < n_; ++i) {
            const std::uint32_t s = Stamped::stamp(rows_[i].read());
            if (s > max_stamp) max_stamp = s;
        }
        stamps_[me] = max_stamp + 1;  // per-writer shadow; writer-private
        rows_[me].write(Stamped::pack(stamps_[me], v));
    }

    std::int32_t read(std::size_t /*me*/ = 0) {
        // Lexicographic max over (stamp, row id): bakery labels, applied
        // to registers.  Any reader may scan — rows are MRSW.
        std::uint64_t best = rows_[0].read();
        std::size_t best_row = 0;
        for (std::size_t i = 1; i < n_; ++i) {
            const std::uint64_t cand = rows_[i].read();
            if (Stamped::stamp(cand) > Stamped::stamp(best) ||
                (Stamped::stamp(cand) == Stamped::stamp(best) &&
                 i > best_row)) {
                best = cand;
                best_row = i;
            }
        }
        return Stamped::value(best);
    }

    std::size_t writers() const { return n_; }

  private:
    std::size_t n_;
    std::vector<std::uint32_t> stamps_;
    std::vector<RowCell> rows_;
};

}  // namespace tamp
