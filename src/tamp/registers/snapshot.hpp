// tamp/registers/snapshot.hpp
//
// Atomic snapshots (§4.3): an array of single-writer registers supporting
// a wait-free `scan` that returns an instantaneous view of all of them.
//
// Two implementations:
//
//  * SimpleSnapshot (Fig. 4.18) — obstruction-free: `collect` twice; a
//    "clean double collect" (no label changed) is a linearizable view.
//    A scanner running against a steady stream of updates may never
//    terminate, which the tests demonstrate is *possible* but rarely hit.
//
//  * WaitFreeSnapshot (Fig. 4.21) — each update embeds a snapshot taken by
//    its writer.  A scanner that sees some register move *twice* knows
//    that register's writer performed a complete update (including its
//    embedded scan) inside the scanner's interval, so it can return the
//    embedded snapshot.  Every scan terminates within two moves per
//    register.
//
// Register cells hold (label, value, embedded-snapshot) — far too wide for
// a machine word — so each cell is a pointer to an immutable record.  In
// real builds the pointer is swapped via atomic<shared_ptr>, whose
// reference counting reclaims records that scanners may still be reading
// (the unsynchronized-GC substitution for the book's Java heap; see
// DESIGN.md).  Under TAMP_SIM the cells ride the tamp::atomic facade
// instead — shared_ptr is not trivially copyable, and the model checker
// (including the progress probes of tamp/sim/progress.hpp) must see every
// cell access as a schedule point — and records are kept alive in a
// per-snapshot arena until the object dies.  Executions are short and the
// structure is rebuilt per schedule, so the arena never grows meaningfully
// there; production keeps shared_ptr because benchmarks hammer update()
// for millions of iterations.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "tamp/core/backoff.hpp"
#include "tamp/sim/atomic.hpp"
#include "tamp/sim/config.hpp"
#include "tamp/sim/hooks.hpp"

#if TAMP_SIM
#include <mutex>
#endif

namespace tamp {

/// Obstruction-free snapshot via clean double collect (Fig. 4.18).
template <typename T>
class SimpleSnapshot {
    struct Record {
        std::uint64_t label;
        T value;
    };

  public:
    explicit SimpleSnapshot(std::size_t n, T init = T{}) : cells_(n) {
        for (auto& c : cells_) c.store(make_record(Record{0, init}));
    }

    /// Single writer per index: bump my label and publish the new value.
    void update(std::size_t me, T value) {
        assert(me < cells_.size());
        sim::op_scope op("SimpleSnapshot::update");
        const auto old = cells_[me].load();
        cells_[me].store(make_record(Record{old->label + 1, value}));
    }

    /// Wait-free read of one component.
    T read(std::size_t i) const { return cells_[i].load()->value; }

    /// Obstruction-free scan: retry until two collects agree everywhere.
    std::vector<T> scan() const {
        sim::op_scope op("SimpleSnapshot::scan");
        auto old = collect();
        SpinWait w;
        while (true) {
            auto fresh = collect();
            bool clean = true;
            for (std::size_t i = 0; i < cells_.size(); ++i) {
                if (old[i]->label != fresh[i]->label) {
                    clean = false;
                    break;
                }
            }
            if (clean) {
                std::vector<T> out;
                out.reserve(fresh.size());
                for (const auto& r : fresh) out.push_back(r->value);
                return out;
            }
            old = std::move(fresh);
            w.spin();
        }
    }

    std::size_t size() const { return cells_.size(); }

  private:
#if TAMP_SIM
    using RecordPtr = const Record*;
    using Cell = tamp::atomic<const Record*>;

    RecordPtr make_record(Record&& r) const {
        auto owned = std::make_unique<const Record>(std::move(r));
        const Record* raw = owned.get();
        std::lock_guard<std::mutex> lk(arena_mu_);  // not held across cells
        arena_.push_back(std::move(owned));
        return raw;
    }
#else
    using RecordPtr = std::shared_ptr<const Record>;
    using Cell = std::atomic<std::shared_ptr<const Record>>;

    RecordPtr make_record(Record&& r) const {
        return std::make_shared<const Record>(std::move(r));
    }
#endif

    std::vector<RecordPtr> collect() const {
        std::vector<RecordPtr> out;
        out.reserve(cells_.size());
        for (const auto& c : cells_) out.push_back(c.load());
        return out;
    }

    mutable std::vector<Cell> cells_;
#if TAMP_SIM
    mutable std::mutex arena_mu_;
    mutable std::vector<std::unique_ptr<const Record>> arena_;
#endif
};

/// Wait-free snapshot with embedded scans (Fig. 4.21).
template <typename T>
class WaitFreeSnapshot {
    struct Record {
        std::uint64_t label;
        T value;
        std::vector<T> snap;  // the writer's view at update time
    };

  public:
    explicit WaitFreeSnapshot(std::size_t n, T init = T{}) : cells_(n) {
        const std::vector<T> zero(n, init);
        for (auto& c : cells_) c.store(make_record(Record{0, init, zero}));
    }

    /// Update = scan, then publish (label+1, value, that scan).  The
    /// embedded scan is what makes concurrent scanners wait-free.
    void update(std::size_t me, T value) {
        assert(me < cells_.size());
        sim::op_scope op("WaitFreeSnapshot::update");
        std::vector<T> snap = scan();
        const auto old = cells_[me].load();
        cells_[me].store(
            make_record(Record{old->label + 1, value, std::move(snap)}));
    }

    T read(std::size_t i) const { return cells_[i].load()->value; }

    /// Wait-free scan: bounded by two observed moves per register.
    std::vector<T> scan() const {
        sim::op_scope op("WaitFreeSnapshot::scan");
        const std::size_t n = cells_.size();
        std::vector<bool> moved(n, false);
        auto old = collect();
        while (true) {
            auto fresh = collect();
            bool clean = true;
            for (std::size_t j = 0; j < n; ++j) {
                if (old[j]->label != fresh[j]->label) {
                    if (moved[j]) {
                        // j moved twice: its second update's embedded scan
                        // happened entirely inside our interval — borrow it.
                        return fresh[j]->snap;
                    }
                    moved[j] = true;
                    clean = false;
                }
            }
            if (clean) {
                std::vector<T> out;
                out.reserve(n);
                for (const auto& r : fresh) out.push_back(r->value);
                return out;
            }
            old = std::move(fresh);
        }
    }

    std::size_t size() const { return cells_.size(); }

  private:
#if TAMP_SIM
    using RecordPtr = const Record*;
    using Cell = tamp::atomic<const Record*>;

    RecordPtr make_record(Record&& r) const {
        auto owned = std::make_unique<const Record>(std::move(r));
        const Record* raw = owned.get();
        std::lock_guard<std::mutex> lk(arena_mu_);  // not held across cells
        arena_.push_back(std::move(owned));
        return raw;
    }
#else
    using RecordPtr = std::shared_ptr<const Record>;
    using Cell = std::atomic<std::shared_ptr<const Record>>;

    RecordPtr make_record(Record&& r) const {
        return std::make_shared<const Record>(std::move(r));
    }
#endif

    std::vector<RecordPtr> collect() const {
        std::vector<RecordPtr> out;
        out.reserve(cells_.size());
        for (const auto& c : cells_) out.push_back(c.load());
        return out;
    }

    mutable std::vector<Cell> cells_;
#if TAMP_SIM
    mutable std::mutex arena_mu_;
    mutable std::vector<std::unique_ptr<const Record>> arena_;
#endif
};

}  // namespace tamp
