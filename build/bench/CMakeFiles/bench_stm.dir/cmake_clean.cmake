file(REMOVE_RECURSE
  "CMakeFiles/bench_stm.dir/bench_stm.cpp.o"
  "CMakeFiles/bench_stm.dir/bench_stm.cpp.o.d"
  "bench_stm"
  "bench_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
