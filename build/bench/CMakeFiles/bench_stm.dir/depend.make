# Empty dependencies file for bench_stm.
# This may be replaced when dependencies are built.
