file(REMOVE_RECURSE
  "CMakeFiles/bench_steal.dir/bench_steal.cpp.o"
  "CMakeFiles/bench_steal.dir/bench_steal.cpp.o.d"
  "bench_steal"
  "bench_steal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_steal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
