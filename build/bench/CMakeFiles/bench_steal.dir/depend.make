# Empty dependencies file for bench_steal.
# This may be replaced when dependencies are built.
