file(REMOVE_RECURSE
  "CMakeFiles/bench_stacks.dir/bench_stacks.cpp.o"
  "CMakeFiles/bench_stacks.dir/bench_stacks.cpp.o.d"
  "bench_stacks"
  "bench_stacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
