# Empty dependencies file for bench_stacks.
# This may be replaced when dependencies are built.
