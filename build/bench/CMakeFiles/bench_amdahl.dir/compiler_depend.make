# Empty compiler generated dependencies file for bench_amdahl.
# This may be replaced when dependencies are built.
