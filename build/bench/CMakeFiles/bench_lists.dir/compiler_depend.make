# Empty compiler generated dependencies file for bench_lists.
# This may be replaced when dependencies are built.
