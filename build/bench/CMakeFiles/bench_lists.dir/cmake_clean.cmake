file(REMOVE_RECURSE
  "CMakeFiles/bench_lists.dir/bench_lists.cpp.o"
  "CMakeFiles/bench_lists.dir/bench_lists.cpp.o.d"
  "bench_lists"
  "bench_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
