file(REMOVE_RECURSE
  "CMakeFiles/bench_principles.dir/bench_principles.cpp.o"
  "CMakeFiles/bench_principles.dir/bench_principles.cpp.o.d"
  "bench_principles"
  "bench_principles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_principles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
