# Empty compiler generated dependencies file for bench_principles.
# This may be replaced when dependencies are built.
