file(REMOVE_RECURSE
  "CMakeFiles/bench_mutex.dir/bench_mutex.cpp.o"
  "CMakeFiles/bench_mutex.dir/bench_mutex.cpp.o.d"
  "bench_mutex"
  "bench_mutex.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mutex.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
