file(REMOVE_RECURSE
  "CMakeFiles/bench_reclaim.dir/bench_reclaim.cpp.o"
  "CMakeFiles/bench_reclaim.dir/bench_reclaim.cpp.o.d"
  "bench_reclaim"
  "bench_reclaim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reclaim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
