file(REMOVE_RECURSE
  "libtamp.a"
)
