# Empty compiler generated dependencies file for tamp.
# This may be replaced when dependencies are built.
