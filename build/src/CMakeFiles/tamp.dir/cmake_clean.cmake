file(REMOVE_RECURSE
  "CMakeFiles/tamp.dir/tamp/core/thread_registry.cpp.o"
  "CMakeFiles/tamp.dir/tamp/core/thread_registry.cpp.o.d"
  "CMakeFiles/tamp.dir/tamp/reclaim/epoch.cpp.o"
  "CMakeFiles/tamp.dir/tamp/reclaim/epoch.cpp.o.d"
  "CMakeFiles/tamp.dir/tamp/reclaim/hazard_pointers.cpp.o"
  "CMakeFiles/tamp.dir/tamp/reclaim/hazard_pointers.cpp.o.d"
  "libtamp.a"
  "libtamp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tamp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
