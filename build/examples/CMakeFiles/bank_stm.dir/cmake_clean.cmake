file(REMOVE_RECURSE
  "CMakeFiles/bank_stm.dir/bank_stm.cpp.o"
  "CMakeFiles/bank_stm.dir/bank_stm.cpp.o.d"
  "bank_stm"
  "bank_stm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_stm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
