file(REMOVE_RECURSE
  "CMakeFiles/primes_balanced.dir/primes_balanced.cpp.o"
  "CMakeFiles/primes_balanced.dir/primes_balanced.cpp.o.d"
  "primes_balanced"
  "primes_balanced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/primes_balanced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
