# Empty dependencies file for primes_balanced.
# This may be replaced when dependencies are built.
