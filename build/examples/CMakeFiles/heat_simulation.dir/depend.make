# Empty dependencies file for heat_simulation.
# This may be replaced when dependencies are built.
