file(REMOVE_RECURSE
  "CMakeFiles/heat_simulation.dir/heat_simulation.cpp.o"
  "CMakeFiles/heat_simulation.dir/heat_simulation.cpp.o.d"
  "heat_simulation"
  "heat_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heat_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
