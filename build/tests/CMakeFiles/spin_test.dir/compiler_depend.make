# Empty compiler generated dependencies file for spin_test.
# This may be replaced when dependencies are built.
