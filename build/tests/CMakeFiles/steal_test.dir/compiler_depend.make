# Empty compiler generated dependencies file for steal_test.
# This may be replaced when dependencies are built.
