file(REMOVE_RECURSE
  "CMakeFiles/steal_test.dir/steal_test.cpp.o"
  "CMakeFiles/steal_test.dir/steal_test.cpp.o.d"
  "steal_test"
  "steal_test.pdb"
  "steal_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
