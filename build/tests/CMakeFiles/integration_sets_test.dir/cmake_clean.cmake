file(REMOVE_RECURSE
  "CMakeFiles/integration_sets_test.dir/integration_sets_test.cpp.o"
  "CMakeFiles/integration_sets_test.dir/integration_sets_test.cpp.o.d"
  "integration_sets_test"
  "integration_sets_test.pdb"
  "integration_sets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_sets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
