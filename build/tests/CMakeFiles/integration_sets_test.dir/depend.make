# Empty dependencies file for integration_sets_test.
# This may be replaced when dependencies are built.
