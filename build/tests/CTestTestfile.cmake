# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/mutex_test[1]_include.cmake")
include("/root/repo/build/tests/spin_test[1]_include.cmake")
include("/root/repo/build/tests/registers_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_test[1]_include.cmake")
include("/root/repo/build/tests/reclaim_test[1]_include.cmake")
include("/root/repo/build/tests/lists_test[1]_include.cmake")
include("/root/repo/build/tests/queues_test[1]_include.cmake")
include("/root/repo/build/tests/stacks_test[1]_include.cmake")
include("/root/repo/build/tests/counting_test[1]_include.cmake")
include("/root/repo/build/tests/hash_test[1]_include.cmake")
include("/root/repo/build/tests/skiplist_test[1]_include.cmake")
include("/root/repo/build/tests/pqueue_test[1]_include.cmake")
include("/root/repo/build/tests/steal_test[1]_include.cmake")
include("/root/repo/build/tests/barrier_test[1]_include.cmake")
include("/root/repo/build/tests/stm_test[1]_include.cmake")
include("/root/repo/build/tests/integration_sets_test[1]_include.cmake")
include("/root/repo/build/tests/sorting_test[1]_include.cmake")
include("/root/repo/build/tests/parallel_test[1]_include.cmake")
