// bench_stacks — experiment E7 (Chapter 11, the Fig. 11.10-style curve):
// Treiber stack vs elimination-backoff stack under symmetric push/pop
// traffic.  The elimination array's win condition is balanced push/pop
// pairs at high contention, so the workload alternates push and pop.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/stacks/stacks.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

template <typename S, typename... Args>
void pairs_loop(benchmark::State& state, Args&&... args) {
    Shared<S>::setup(state, std::forward<Args>(args)...);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        S& stack = *Shared<S>::instance;
        stack.push(42);
        int out;
        benchmark::DoNotOptimize(stack.try_pop(out));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<S>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_TreiberStack(benchmark::State& s) {
    pairs_loop<LockFreeStack<int>>(s);
}
void BM_EliminationStack(benchmark::State& s) {
    pairs_loop<EliminationBackoffStack<int>>(s, std::size_t{8});
}
void BM_EliminationStackSmallArray(benchmark::State& s) {
    pairs_loop<EliminationBackoffStack<int>>(s, std::size_t{1});
}

TAMP_BENCH_THREADS(BM_TreiberStack);
TAMP_BENCH_THREADS(BM_EliminationStack);
TAMP_BENCH_THREADS(BM_EliminationStackSmallArray);

}  // namespace

BENCHMARK_MAIN();
