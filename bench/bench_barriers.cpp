// bench_barriers — experiment E13 (Chapter 17): barrier episodes per
// second at 2/4/8 threads for the four phase barriers.  The book's
// qualitative ordering on big machines: the flat sense-reversing barrier's
// single counter becomes the bottleneck, trees and dissemination scale.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/barrier/barriers.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

template <typename B>
void barrier_loop(benchmark::State& state) {
    Shared<B>::setup(state, static_cast<std::size_t>(state.threads()));
    const auto me = static_cast<std::size_t>(state.thread_index());
    for (auto _ : state) {
        Shared<B>::instance->await(me);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<B>::teardown(state);
}

void BM_SenseReversing(benchmark::State& s) {
    barrier_loop<SenseReversingBarrier>(s);
}
void BM_CombiningTreeBarrier(benchmark::State& s) {
    barrier_loop<CombiningTreeBarrier>(s);
}
void BM_StaticTreeBarrier(benchmark::State& s) {
    barrier_loop<StaticTreeBarrier>(s);
}
void BM_Dissemination(benchmark::State& s) {
    barrier_loop<DisseminationBarrier>(s);
}

#define TAMP_BARRIER_THREADS(name) \
    BENCHMARK(name)->Threads(2)->Threads(4)->Threads(8)->UseRealTime()

TAMP_BARRIER_THREADS(BM_SenseReversing);
TAMP_BARRIER_THREADS(BM_CombiningTreeBarrier);
TAMP_BARRIER_THREADS(BM_StaticTreeBarrier);
TAMP_BARRIER_THREADS(BM_Dissemination);

}  // namespace

BENCHMARK_MAIN();
