// bench_kv — experiment K1 (the KV service composition): YCSB-style
// mixes over the sharded KvStore, closed loop across the thread ladder
// and an open-loop request pipeline over the work-stealing pool.
//
// Three mixes (read-heavy 95/5, update-heavy 50/50, scan-mixed
// 70/20/5/5) x two key distributions (Gray zipfian theta=0.99,
// uniform); op latency lands in tamp.kv.op_ns and the attribution
// counters (kv.resizes, kv.cas_retries, kv.scan_retries, kv.mu_wait_ns)
// ride along, so a p999 spike can be pinned on a resize burst or a
// contended stripe rather than guessed at.  The pipeline series
// publishes tamp.kv.sojourn_ns — submit-to-completion, the number a
// service SLO is actually written against.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <optional>
#include <thread>

#include "bench_util.hpp"
#include "tamp/kv/kv.hpp"
#include "tamp/steal/pool.hpp"

namespace {

using tamp_bench::Shared;
namespace kv = tamp::kv;

using Store = kv::KvStore<std::uint64_t, std::uint64_t>;
using Workload = kv::Workload<Store>;

// Small enough that per-rung preloads stay cheap, large enough that the
// store doubles several times past its 16-bucket shards during load.
constexpr std::size_t kKeySpace = std::size_t{1} << 16;

kv::WorkloadConfig make_cfg(const kv::WorkloadMix& mix, kv::KeyDist dist) {
    kv::WorkloadConfig cfg;
    cfg.mix = mix;
    cfg.dist = dist;
    cfg.key_space = kKeySpace;
    return cfg;
}

/// Store + generator, preloaded with the full key space.
struct Rig {
    Store store;
    Workload wl;
    explicit Rig(const kv::WorkloadConfig& cfg)
        : store(), wl(store, cfg) {
        wl.load(2);
    }
};

void kv_mix(benchmark::State& state, const kv::WorkloadMix& mix,
            kv::KeyDist dist) {
    Shared<Rig>::setup(state, make_cfg(mix, dist));
    // Shared<>::instance is published by the loop-start barrier, so the
    // per-thread generator state is built on first iteration.
    std::optional<Workload::ThreadState> ts;
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Rig& rig = *Shared<Rig>::instance;
        if (!ts) {
            ts = rig.wl.make_state(
                static_cast<unsigned>(state.thread_index()));
        }
        benchmark::DoNotOptimize(rig.wl.step(*ts));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Rig>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state, "kv.op_ns");
}

void BM_Kv_ReadHeavy_Zipf(benchmark::State& s) {
    kv_mix(s, kv::kReadHeavy, kv::KeyDist::kZipfian);
}
void BM_Kv_ReadHeavy_Uniform(benchmark::State& s) {
    kv_mix(s, kv::kReadHeavy, kv::KeyDist::kUniform);
}
void BM_Kv_UpdateHeavy_Zipf(benchmark::State& s) {
    kv_mix(s, kv::kUpdateHeavy, kv::KeyDist::kZipfian);
}
void BM_Kv_UpdateHeavy_Uniform(benchmark::State& s) {
    kv_mix(s, kv::kUpdateHeavy, kv::KeyDist::kUniform);
}
void BM_Kv_ScanMixed_Zipf(benchmark::State& s) {
    kv_mix(s, kv::kScanMixed, kv::KeyDist::kZipfian);
}
void BM_Kv_ScanMixed_Uniform(benchmark::State& s) {
    kv_mix(s, kv::kScanMixed, kv::KeyDist::kUniform);
}

TAMP_BENCH_THREADS(BM_Kv_ReadHeavy_Zipf);
TAMP_BENCH_THREADS(BM_Kv_ReadHeavy_Uniform);
TAMP_BENCH_THREADS(BM_Kv_UpdateHeavy_Zipf);
TAMP_BENCH_THREADS(BM_Kv_UpdateHeavy_Uniform);
TAMP_BENCH_THREADS(BM_Kv_ScanMixed_Zipf);
TAMP_BENCH_THREADS(BM_Kv_ScanMixed_Uniform);

// ---------------------------------------------------------------------
// Open loop: producers submit into the MS-queue lanes, pool drainers
// execute.  Sojourn (submit -> completion) is the published latency.
// ---------------------------------------------------------------------

struct PipeRig {
    Store store;
    Workload wl;
    tamp::WorkStealingPool pool;
    kv::Pipeline<Store> pipe;
    explicit PipeRig(const kv::WorkloadConfig& cfg)
        : store(), wl(store, cfg), pool(2), pipe(store, wl, pool, 2) {
        wl.load(2);
        pipe.start();
    }
    ~PipeRig() { pipe.stop(); }
};

void kv_pipeline(benchmark::State& state, kv::KeyDist dist) {
    Shared<PipeRig>::setup(state, make_cfg(kv::kReadHeavy, dist));
    constexpr int kBatch = 64;
    // Open loop with a bounded window: past kWindow outstanding
    // requests the producer yields.  Kept shallow on purpose — the
    // published sojourn should measure lane hand-off plus service, not
    // the depth of a standing queue the producers chose to build (a
    // deep window just republishes kWindow/throughput, drowning the
    // signal in run-to-run queueing noise).
    constexpr std::uint64_t kWindow = 256;
    std::optional<Workload::ThreadState> ts;
    std::uint64_t lane = static_cast<std::uint64_t>(state.thread_index());
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    while (state.KeepRunningBatch(kBatch)) {
        PipeRig& rig = *Shared<PipeRig>::instance;
        if (!ts) {
            ts = rig.wl.make_state(
                static_cast<unsigned>(state.thread_index()));
        }
        for (int i = 0; i < kBatch; ++i) {
            std::uint64_t key = 0;
            const kv::OpKind op = rig.wl.next_op(*ts, key);
            rig.pipe.submit(op, key, ts->rng.next(), lane++);
        }
        while (rig.pipe.submitted() - rig.pipe.completed() > kWindow) {
            std::this_thread::yield();
        }
    }
    // Every submitted request must complete inside the measured region
    // so the sojourn histogram covers the whole offered load.
    Shared<PipeRig>::instance->pipe.drain();
    state.SetItemsProcessed(state.iterations());
    Shared<PipeRig>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state, "kv.sojourn_ns");
}

void BM_KvPipeline_ReadHeavy_Zipf(benchmark::State& s) {
    kv_pipeline(s, kv::KeyDist::kZipfian);
}

TAMP_BENCH_THREADS(BM_KvPipeline_ReadHeavy_Zipf);

}  // namespace

BENCHMARK_MAIN();
