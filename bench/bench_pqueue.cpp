// bench_pqueue — experiment E11 (Chapter 15): priority-queue throughput
// under a mixed add/removeMin workload (each iteration adds one item at a
// random priority and removes one minimum — keeps the structure at a
// stable size).  Series: array bins, counter tree, the fine-grained heap,
// and the skiplist-based SkipQueue.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/pqueue/pqueue.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

constexpr std::size_t kRange = 64;       // bounded-range structures
constexpr std::size_t kPrefill = 256;

template <typename Q, typename AddFn, typename TakeFn, typename... Args>
void pq_loop(benchmark::State& state, AddFn add, TakeFn take,
             Args&&... args) {
    Shared<Q>::setup(state, std::forward<Args>(args)...);
    if (state.thread_index() == 0) {
        auto rng = tamp_bench::bench_rng(state);
        for (std::size_t i = 0; i < kPrefill; ++i) {
            add(*Shared<Q>::instance, static_cast<int>(i),
                rng.next_below(kRange));
        }
    }
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Q& q = *Shared<Q>::instance;
        add(q, 7, rng.next_below(kRange));
        int out;
        benchmark::DoNotOptimize(take(q, out));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Q>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_LinearArrayPQ(benchmark::State& s) {
    pq_loop<LinearArrayPQ<int>>(
        s, [](auto& q, int v, std::size_t p) { q.add(v, p); },
        [](auto& q, int& out) { return q.try_remove_min(out); }, kRange);
}
void BM_TreePQ(benchmark::State& s) {
    pq_loop<TreePQ<int>>(
        s, [](auto& q, int v, std::size_t p) { q.add(v, p); },
        [](auto& q, int& out) { return q.try_remove_min(out); }, kRange);
}
void BM_FineGrainedHeap(benchmark::State& s) {
    pq_loop<FineGrainedHeap<int>>(
        s, [](auto& q, int v, std::size_t p) { q.add(v, p); },
        [](auto& q, int& out) { return q.try_remove_min(out); },
        std::size_t{1 << 16});
}
void BM_SkipQueue(benchmark::State& s) {
    pq_loop<SkipQueue<int>>(
        s, [](auto& q, int v, std::size_t p) { q.add(v, p); },
        [](auto& q, int& out) { return q.try_remove_min(out); });
}

TAMP_BENCH_THREADS(BM_LinearArrayPQ);
TAMP_BENCH_THREADS(BM_TreePQ);
TAMP_BENCH_THREADS(BM_FineGrainedHeap);
TAMP_BENCH_THREADS(BM_SkipQueue);

}  // namespace

BENCHMARK_MAIN();
