// bench_queues — experiment E6 (Chapter 10): queue throughput.
//
// Workload: every thread alternates enqueue/dequeue (the standard pairs
// microbenchmark), so the queue stays near-empty and the head/tail hot
// spots are maximally contended.  Series: two-lock BoundedQueue vs the
// Michael–Scott lock-free queue; the SPSC wait-free queue is measured in
// its only legal configuration (one producer, one consumer) as the
// "restricted sharing is nearly free" reference point.

#include <benchmark/benchmark.h>

#include <thread>

#include "bench_util.hpp"
#include "tamp/queues/queues.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

template <typename Q, typename... Args>
void pairs_loop(benchmark::State& state, Args&&... args) {
    Shared<Q>::setup(state, std::forward<Args>(args)...);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Q& q = *Shared<Q>::instance;
        q.enqueue(42);
        int out;
        benchmark::DoNotOptimize(q.try_dequeue(out));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Q>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_BoundedQueue(benchmark::State& s) {
    pairs_loop<BoundedQueue<int>>(s, std::size_t{1024});
}
void BM_MichaelScott(benchmark::State& s) {
    pairs_loop<LockFreeQueue<int>>(s);
}
void BM_RecyclingQueue(benchmark::State& s) {
    pairs_loop<RecyclingQueue<int>>(s, std::size_t{1024});
}
TAMP_BENCH_THREADS(BM_BoundedQueue);
TAMP_BENCH_THREADS(BM_MichaelScott);
TAMP_BENCH_THREADS(BM_RecyclingQueue);

// SPSC reference: thread 0 produces, thread 1 consumes.
void BM_SpscPipe(benchmark::State& state) {
    Shared<WaitFreeTwoThreadQueue<int>>::setup(state, std::size_t{1024});
    // Dereference only inside the loop (after the start barrier).
    if (state.thread_index() == 0) {
        for (auto _ : state) {
            auto& q = *Shared<WaitFreeTwoThreadQueue<int>>::instance;
            while (!q.try_enqueue(7)) std::this_thread::yield();
        }
    } else {
        for (auto _ : state) {
            auto& q = *Shared<WaitFreeTwoThreadQueue<int>>::instance;
            int out;
            while (!q.try_dequeue(out)) std::this_thread::yield();
            benchmark::DoNotOptimize(out);
        }
    }
    state.SetItemsProcessed(state.iterations());
    Shared<WaitFreeTwoThreadQueue<int>>::teardown(state);
}
BENCHMARK(BM_SpscPipe)->Threads(2)->UseRealTime();

// Synchronous hand-off rate: pairs of (producer, consumer) threads.
void BM_SyncDualQueue(benchmark::State& state) {
    Shared<SynchronousDualQueue<int>>::setup(state);
    if (state.thread_index() % 2 == 0) {
        for (auto _ : state) {
            Shared<SynchronousDualQueue<int>>::instance->enqueue(5);
        }
    } else {
        for (auto _ : state) {
            benchmark::DoNotOptimize(
                Shared<SynchronousDualQueue<int>>::instance->dequeue());
        }
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SynchronousDualQueue<int>>::teardown(state);
}
BENCHMARK(BM_SyncDualQueue)->Threads(2)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
