// bench_lists — experiment E5 (the Chapter 9 ladder): throughput of the
// five list-based sets under the book's two canonical operation mixes,
//
//   read-heavy:  90% contains / 9% add / 1% remove
//   update-heavy: 34% contains / 33% add / 33% remove  (≈ the 1/3 mix)
//
// over a small key range (contention) at 1..8 threads.  The expected
// ordering (coarse < fine < optimistic < lazy ≤ lock-free as concurrency
// grows) is what EXPERIMENTS.md checks qualitatively.
//
// The lock-free list additionally runs as a 3-way SMR ladder
// (BM_LockFreeHp/BM_LockFree/BM_LockFreeQsbr): the same Harris–Michael
// algorithm instantiated over each reclaim::domain, isolating what the
// reclamation substrate — per-hop hazard publication vs. per-op epoch pin
// vs. QSBR's free read side — costs the structure that stresses it most.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/lists/lists.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

constexpr int kKeyRange = 128;

template <typename Set>
void set_mix(benchmark::State& state, int contains_pct, int add_pct) {
    Shared<Set>::setup(state);
    if (state.thread_index() == 0) {
        for (int v = 0; v < kKeyRange; v += 2) {
            Shared<Set>::instance->add(v);  // 50% prefill
        }
    }
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Set& set = *Shared<Set>::instance;
        const int v = static_cast<int>(rng.next_below(kKeyRange));
        const int op = static_cast<int>(rng.next_below(100));
        bool r;
        if (op < contains_pct) {
            r = set.contains(v);
        } else if (op < contains_pct + add_pct) {
            r = set.add(v);
        } else {
            r = set.remove(v);
        }
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Set>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

template <typename Set>
void read_heavy(benchmark::State& s) {
    set_mix<Set>(s, 90, 9);
}
template <typename Set>
void update_heavy(benchmark::State& s) {
    set_mix<Set>(s, 34, 33);
}

void BM_Coarse_ReadHeavy(benchmark::State& s) {
    read_heavy<CoarseListSet<int>>(s);
}
void BM_Fine_ReadHeavy(benchmark::State& s) {
    read_heavy<FineListSet<int>>(s);
}
void BM_Optimistic_ReadHeavy(benchmark::State& s) {
    read_heavy<OptimisticListSet<int>>(s);
}
void BM_Lazy_ReadHeavy(benchmark::State& s) {
    read_heavy<LazyListSet<int>>(s);
}
void BM_LockFree_ReadHeavy(benchmark::State& s) {
    read_heavy<LockFreeListSet<int>>(s);  // EBR (the default domain)
}
void BM_LockFreeHp_ReadHeavy(benchmark::State& s) {
    read_heavy<LockFreeListSet<int, DefaultKeyOf<int>, reclaim::hp>>(s);
}
void BM_LockFreeQsbr_ReadHeavy(benchmark::State& s) {
    read_heavy<LockFreeListSet<int, DefaultKeyOf<int>, reclaim::qsbr>>(s);
}

void BM_Coarse_UpdateHeavy(benchmark::State& s) {
    update_heavy<CoarseListSet<int>>(s);
}
void BM_Fine_UpdateHeavy(benchmark::State& s) {
    update_heavy<FineListSet<int>>(s);
}
void BM_Optimistic_UpdateHeavy(benchmark::State& s) {
    update_heavy<OptimisticListSet<int>>(s);
}
void BM_Lazy_UpdateHeavy(benchmark::State& s) {
    update_heavy<LazyListSet<int>>(s);
}
void BM_LockFree_UpdateHeavy(benchmark::State& s) {
    update_heavy<LockFreeListSet<int>>(s);  // EBR (the default domain)
}
void BM_LockFreeHp_UpdateHeavy(benchmark::State& s) {
    update_heavy<LockFreeListSet<int, DefaultKeyOf<int>, reclaim::hp>>(s);
}
void BM_LockFreeQsbr_UpdateHeavy(benchmark::State& s) {
    update_heavy<LockFreeListSet<int, DefaultKeyOf<int>, reclaim::qsbr>>(s);
}

TAMP_BENCH_THREADS(BM_Coarse_ReadHeavy);
TAMP_BENCH_THREADS(BM_Fine_ReadHeavy);
TAMP_BENCH_THREADS(BM_Optimistic_ReadHeavy);
TAMP_BENCH_THREADS(BM_Lazy_ReadHeavy);
TAMP_BENCH_THREADS(BM_LockFree_ReadHeavy);
TAMP_BENCH_THREADS(BM_LockFreeHp_ReadHeavy);
TAMP_BENCH_THREADS(BM_LockFreeQsbr_ReadHeavy);
TAMP_BENCH_THREADS(BM_Coarse_UpdateHeavy);
TAMP_BENCH_THREADS(BM_Fine_UpdateHeavy);
TAMP_BENCH_THREADS(BM_Optimistic_UpdateHeavy);
TAMP_BENCH_THREADS(BM_Lazy_UpdateHeavy);
TAMP_BENCH_THREADS(BM_LockFree_UpdateHeavy);
TAMP_BENCH_THREADS(BM_LockFreeHp_UpdateHeavy);
TAMP_BENCH_THREADS(BM_LockFreeQsbr_UpdateHeavy);

}  // namespace

BENCHMARK_MAIN();
