// bench_steal — experiment E12 (Chapter 16): work distribution.
//
//  * deque micro-costs: owner push/pop vs steal, bounded (ABP) vs
//    unbounded (Chase–Lev);
//  * fork/join fib through the WorkStealingPool at 1/2/4 workers vs the
//    sequential baseline — the book's headline "work stealing balances
//    load dynamically" demo.  (On this 1-CPU host the parallel versions
//    measure scheduling overhead, not speedup; see EXPERIMENTS.md.)

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/steal/steal.hpp"

namespace {

using namespace tamp;

void BM_BoundedDequeOwnerOps(benchmark::State& state) {
    BoundedWorkStealingDeque<long> d(4096);
    for (auto _ : state) {
        d.try_push_bottom(1);
        long out;
        benchmark::DoNotOptimize(d.try_pop_bottom(out));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BoundedDequeOwnerOps);

void BM_UnboundedDequeOwnerOps(benchmark::State& state) {
    WorkStealingDeque<long> d;
    for (auto _ : state) {
        d.push_bottom(1);
        long out;
        benchmark::DoNotOptimize(d.try_pop_bottom(out));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_UnboundedDequeOwnerOps);

long fib_seq(long n) { return n < 2 ? n : fib_seq(n - 1) + fib_seq(n - 2); }

void BM_FibSequential(benchmark::State& state) {
    for (auto _ : state) {
        benchmark::DoNotOptimize(fib_seq(state.range(0)));
    }
}
BENCHMARK(BM_FibSequential)->Arg(20)->Arg(24);

long fib_par(WorkStealingPool& pool, long n) {
    if (n < 12) return fib_seq(n);
    auto left = pool.spawn([&pool, n] { return fib_par(pool, n - 1); });
    const long right = fib_par(pool, n - 2);
    return left->get() + right;
}

void BM_FibWorkStealing(benchmark::State& state) {
    WorkStealingPool pool(static_cast<std::size_t>(state.range(1)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(fib_par(pool, state.range(0)));
    }
}
BENCHMARK(BM_FibWorkStealing)
    ->Args({20, 1})
    ->Args({20, 2})
    ->Args({20, 4})
    ->Args({24, 2});

// Task-granularity sweep: many independent tasks through the pool.
void BM_PoolTaskThroughput(benchmark::State& state) {
    WorkStealingPool pool(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        std::atomic<long> sink{0};
        for (int i = 0; i < 256; ++i) {
            pool.submit([&sink] { sink.fetch_add(1); });
        }
        pool.wait_idle();
        benchmark::DoNotOptimize(sink.load());
    }
    state.SetItemsProcessed(state.iterations() * 256);
}
BENCHMARK(BM_PoolTaskThroughput)->Arg(1)->Arg(2)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
