// bench_rwlock — experiment E16 (Chapter 8): readers–writers locks vs a
// plain mutex at varying read fractions.  RW locks pay extra bookkeeping,
// so they only win when reads dominate *and* readers actually overlap;
// the fair (FIFO) variant trades a little throughput for writer progress.

#include <benchmark/benchmark.h>

#include <mutex>

#include "bench_util.hpp"
#include "tamp/monitor/rwlock.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

struct Data {
    long value = 0;
};

template <typename RW>
void rw_mix(benchmark::State& state, int read_pct) {
    Shared<RW>::setup(state);
    Shared<Data>::setup(state);
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        RW& rw = *Shared<RW>::instance;
        if (static_cast<int>(rng.next_below(100)) < read_pct) {
            ReadGuard<RW> g(rw);
            benchmark::DoNotOptimize(Shared<Data>::instance->value);
        } else {
            WriteGuard<RW> g(rw);
            benchmark::DoNotOptimize(++Shared<Data>::instance->value);
        }
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Data>::teardown(state);
    Shared<RW>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void mutex_mix(benchmark::State& state, int read_pct) {
    Shared<std::mutex>::setup(state);
    Shared<Data>::setup(state);
    auto rng = tamp_bench::bench_rng(state);
    for (auto _ : state) {
        std::lock_guard<std::mutex> g(*Shared<std::mutex>::instance);
        if (static_cast<int>(rng.next_below(100)) < read_pct) {
            benchmark::DoNotOptimize(Shared<Data>::instance->value);
        } else {
            benchmark::DoNotOptimize(++Shared<Data>::instance->value);
        }
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Data>::teardown(state);
    Shared<std::mutex>::teardown(state);
}

void BM_SimpleRW_Read95(benchmark::State& s) {
    rw_mix<SimpleReadWriteLock>(s, 95);
}
void BM_FifoRW_Read95(benchmark::State& s) {
    rw_mix<FifoReadWriteLock>(s, 95);
}
void BM_Mutex_Read95(benchmark::State& s) { mutex_mix(s, 95); }
void BM_SimpleRW_Read50(benchmark::State& s) {
    rw_mix<SimpleReadWriteLock>(s, 50);
}
void BM_FifoRW_Read50(benchmark::State& s) {
    rw_mix<FifoReadWriteLock>(s, 50);
}
void BM_Mutex_Read50(benchmark::State& s) { mutex_mix(s, 50); }

TAMP_BENCH_THREADS(BM_SimpleRW_Read95);
TAMP_BENCH_THREADS(BM_FifoRW_Read95);
TAMP_BENCH_THREADS(BM_Mutex_Read95);
TAMP_BENCH_THREADS(BM_SimpleRW_Read50);
TAMP_BENCH_THREADS(BM_FifoRW_Read50);
TAMP_BENCH_THREADS(BM_Mutex_Read50);

}  // namespace

BENCHMARK_MAIN();
