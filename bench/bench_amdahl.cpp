// bench_amdahl — experiment E15 (Chapter 1, Amdahl's law): measured
// speedup of a partly-sequential workload versus the analytic bound
//
//     S = 1 / (1 - p + p/n)
//
// The workload: `kWork` units, a fraction p of which can be processed by
// the work-stealing pool in parallel, the rest on one thread behind a
// lock.  The harness prints the analytic bound beside the measured time
// so EXPERIMENTS.md can compare shapes.  (On this 1-CPU host every
// speedup collapses to ≈1 — the n=1 column of Amdahl's table — which is
// itself the verifiable prediction.)

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.hpp"
#include "tamp/steal/pool.hpp"

namespace {

using namespace tamp;

constexpr int kWork = 512;

// A work unit heavy enough (~5 µs) that scheduling overhead does not
// swamp the law being measured.
long work_unit(long seed) {
    long x = seed | 1;
    for (int i = 0; i < 4000; ++i) x = x * 6364136223846793005L + 1;
    return x;
}

void BM_Amdahl(benchmark::State& state) {
    const int parallel_pct = static_cast<int>(state.range(0));
    const auto workers = static_cast<std::size_t>(state.range(1));
    WorkStealingPool pool(workers);
    const int parallel_units = kWork * parallel_pct / 100;
    for (auto _ : state) {
        std::atomic<long> sink{0};
        // Sequential fraction: one thread, in order.
        for (int i = parallel_units; i < kWork; ++i) {
            sink.fetch_add(work_unit(i));
        }
        // Parallel fraction: fan out to the pool.
        for (int i = 0; i < parallel_units; ++i) {
            pool.submit([&sink, i] { sink.fetch_add(work_unit(i)); });
        }
        pool.wait_idle();
        benchmark::DoNotOptimize(sink.load());
    }
    const double p = parallel_pct / 100.0;
    const double n = static_cast<double>(workers);
    state.counters["amdahl_bound"] = 1.0 / ((1.0 - p) + p / n);
    state.SetItemsProcessed(state.iterations() * kWork);
}
BENCHMARK(BM_Amdahl)
    ->Args({0, 1})
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({50, 4})
    ->Args({90, 1})
    ->Args({90, 2})
    ->Args({90, 4})
    ->Args({100, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
