// bench/bench_util.hpp
//
// Shared plumbing for the benchmark harness.  Every binary regenerates one
// figure family from the book's evaluation (see DESIGN.md's experiment
// index): the same workload is run over each implementation in the family
// at several thread counts, and items/sec is the reported series.
//
// Reading the output on this reproduction's hardware: the container has a
// SINGLE CPU, so "threads" here means oversubscription, not parallelism —
// see EXPERIMENTS.md for how that shifts (and sometimes inverts) the
// book's curves and which qualitative claims survive.

#pragma once

#include <benchmark/benchmark.h>

#include <cstddef>

#include "tamp/core/random.hpp"

namespace tamp_bench {

/// One shared instance per benchmark run, created/destroyed by thread 0
/// (the multithreaded setup pattern from the benchmark docs; the implicit
/// barrier at the loop start publishes the pointer to all threads).
template <typename T>
struct Shared {
    static inline T* instance = nullptr;

    template <typename... Args>
    static void setup(benchmark::State& state, Args&&... args) {
        if (state.thread_index() == 0) {
            instance = new T(std::forward<Args>(args)...);
        }
    }

    static void teardown(benchmark::State& state) {
        if (state.thread_index() == 0) {
            delete instance;
            instance = nullptr;
        }
    }
};

/// Per-thread deterministic RNG for workload draws (seeded by thread
/// index so runs are comparable across implementations).
inline tamp::XorShift64 bench_rng(const benchmark::State& state) {
    return tamp::XorShift64(
        0x9E3779B97F4A7C15ull ^
        (static_cast<std::uint64_t>(state.thread_index()) * 0x1000193));
}

/// The standard thread ladder for every family.  One physical CPU means
/// these measure contention/oversubscription behaviour, which is exactly
/// what distinguishes the algorithms.
constexpr int kThreadLadder[] = {1, 2, 4, 8};

}  // namespace tamp_bench

#define TAMP_BENCH_THREADS(name) \
    BENCHMARK(name)->Threads(1)->Threads(2)->Threads(4)->Threads(8)->UseRealTime()
