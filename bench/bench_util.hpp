// bench/bench_util.hpp
//
// Shared plumbing for the benchmark harness.  Every binary regenerates one
// figure family from the book's evaluation (see DESIGN.md's experiment
// index): the same workload is run over each implementation in the family
// at several thread counts, and items/sec is the reported series.
//
// Reading the output on this reproduction's hardware: the container has a
// SINGLE CPU, so "threads" here means oversubscription, not parallelism —
// see EXPERIMENTS.md for how that shifts (and sometimes inverts) the
// book's curves and which qualitative claims survive.
//
// Telemetry: when the library is built with TAMP_STATS=ON, every benchmark
// that calls counters_begin()/counters_publish() reports the tamp::obs
// counter deltas for its timing region as `tamp.*` user counters in the
// google-benchmark output; tools/bench_report.py turns that into
// BENCH_<family>.json and diffs runs (the perf-regression gate).

#pragma once

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <thread>

#include "tamp/core/random.hpp"
#include "tamp/obs/counter.hpp"
#include "tamp/obs/histogram.hpp"
#include "tamp/obs/timer.hpp"

namespace tamp_bench {

namespace detail {

/// Sense-reversing barrier for benchmark teardown.  google-benchmark
/// synchronizes worker threads at the *start* of the timing loop but not
/// after it, so "thread 0 deletes the shared instance after its loop"
/// races threads still inside theirs.  Every thread instead arrives here;
/// the last arrival runs `last` (the delete) before releasing the rest,
/// and the generation bump keeps late spinners safe across repetitions.
class TeardownBarrier {
  public:
    template <typename LastFn>
    void arrive_and_wait(int parties, LastFn&& last) {
        const std::uint64_t gen = generation_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties) {
            last();
            arrived_.store(0, std::memory_order_relaxed);
            generation_.store(gen + 1, std::memory_order_release);
        } else {
            while (generation_.load(std::memory_order_acquire) == gen) {
                std::this_thread::yield();
            }
        }
    }

  private:
    std::atomic<int> arrived_{0};
    // tamp-lint: allow(atomic-align) — teardown-only, not a hot path.
    std::atomic<std::uint64_t> generation_{0};
};

}  // namespace detail

/// One shared instance per benchmark run, created by thread 0 (the
/// multithreaded setup pattern from the benchmark docs; the implicit
/// barrier at the loop start publishes the pointer to all threads) and
/// deleted by the *last* thread to leave the timing loop — thread 0
/// deleting unconditionally was a use-after-free under
/// `--benchmark_repetitions` whenever another thread was still draining
/// its final iterations.
template <typename T>
struct Shared {
    static inline T* instance = nullptr;
    static inline detail::TeardownBarrier barrier{};

    template <typename... Args>
    static void setup(benchmark::State& state, Args&&... args) {
        if (state.thread_index() == 0) {
            instance = new T(std::forward<Args>(args)...);
        }
    }

    static void teardown(benchmark::State& state) {
        barrier.arrive_and_wait(state.threads(), [] {
            delete instance;
            instance = nullptr;
        });
    }
};

/// Per-thread deterministic RNG for workload draws (seeded by thread
/// index so runs are comparable across implementations).
inline tamp::XorShift64 bench_rng(const benchmark::State& state) {
    return tamp::XorShift64(
        0x9E3779B97F4A7C15ull ^
        (static_cast<std::uint64_t>(state.thread_index()) * 0x1000193));
}

/// The standard thread ladder.  On one physical CPU the upper rungs
/// measure contention/oversubscription behaviour, which is exactly what
/// distinguishes the algorithms; on a real multi-core runner the ladder
/// climbs into genuine parallelism before it saturates.
constexpr int kThreadLadder[] = {1, 2, 4, 8, 16, 32, 64, 128};

/// Ladder cap: 2x the hardware, so multi-core runners get a few rungs of
/// oversubscription but not a ladder of nothing else.  Floored at 8 to
/// preserve the book-comparable 1/2/4/8 series on tiny (1-2 CPU) hosts.
inline int bench_thread_cap() {
    const unsigned hw = std::thread::hardware_concurrency();
    const int cap = 2 * static_cast<int>(hw == 0 ? 1 : hw);
    return cap < 8 ? 8 : cap;
}

/// Registration hook for TAMP_BENCH_THREADS: one run per ladder rung
/// within the cap.
inline void thread_ladder(benchmark::internal::Benchmark* b) {
    for (int t : kThreadLadder) {
        if (t <= bench_thread_cap()) b->Threads(t);
    }
    b->UseRealTime();
}

namespace detail {
/// Baseline snapshot for the current benchmark run (thread 0 only).
inline std::map<std::string, std::uint64_t>& counter_baseline() {
    static std::map<std::string, std::uint64_t> m;
    return m;
}

/// Histogram baseline for the current benchmark run (thread 0 only).
inline std::map<std::string, tamp::obs::hist_sample>& hist_baseline() {
    static std::map<std::string, tamp::obs::hist_sample> m;
    return m;
}
}  // namespace detail

/// Latch the tamp::obs counter baseline.  Call on every thread after
/// setup, before the timing loop: thread 0 snapshots, the rest no-op, and
/// the loop-start barrier orders the snapshot before any iteration.
inline void counters_begin(const benchmark::State& state) {
    if (state.thread_index() != 0) return;
    auto& base = detail::counter_baseline();
    base.clear();
    for (const auto& s : tamp::obs::snapshot()) base[s.name] = s.value;
}

/// Quiescence barrier with nothing to delete: benchmarks with no Shared<>
/// instance call this between the timing loop and counters_publish() so
/// the sweep still observes every worker's final increments.
inline void quiesce(benchmark::State& state) {
    static detail::TeardownBarrier barrier;
    barrier.arrive_and_wait(state.threads(), [] {});
}

/// Publish the per-run counter deltas as `tamp.*` benchmark counters.
/// Call after Shared<>::teardown (whose barrier guarantees every worker
/// has left the timing loop, making the sweep exact).  With TAMP_STATS
/// off the snapshot is empty and nothing is published.
inline void counters_publish(benchmark::State& state) {
    if (state.thread_index() != 0) return;
    const auto& base = detail::counter_baseline();
    for (const auto& s : tamp::obs::snapshot()) {
        const auto it = base.find(s.name);
        const std::uint64_t before = it == base.end() ? 0 : it->second;
        // Sum counters report the delta for this run; high-water marks
        // are not meaningfully diffable, so report the absolute mark.
        const std::uint64_t v = s.kind == tamp::obs::counter_kind::kMax
                                    ? s.value
                                    : s.value - before;
        if (v != 0) {
            state.counters[std::string("tamp.") + s.name] =
                static_cast<double>(v);
        }
    }
}

/// Latch the tamp::obs histogram baseline.  Same calling convention as
/// counters_begin(): every thread calls it after setup, thread 0 does the
/// snapshot.  With TAMP_STATS off the registry is empty and this no-ops.
inline void latency_begin(const benchmark::State& state) {
    if (state.thread_index() != 0) return;
    auto& base = detail::hist_baseline();
    base.clear();
    for (auto& h : tamp::obs::hist_snapshot()) base[h.name] = std::move(h);
}

/// Publish merged tail-latency percentiles for this run as `tamp.p50`,
/// `tamp.p90`, `tamp.p99`, `tamp.p999`, `tamp.pmax` and `tamp.lat_samples`
/// (all latencies in ns).  Call after the teardown barrier, like
/// counters_publish(), so the merge sees every worker's records.
///
/// The published series comes from ONE histogram — `preferred` if it
/// recorded samples during this run, otherwise whichever histogram
/// recorded the most — because averaging unrelated latency distributions
/// (lock acquires vs epoch collects) would mean nothing.  Histograms are
/// process-lifetime accumulators, so the per-run view is the bucket-wise
/// delta against the latency_begin() baseline; `max` cannot be
/// differenced, so the run max is the delta's top occupied bucket bound
/// clamped by the absolute tracked max (pessimistic, never under-reports).
inline void latency_publish(benchmark::State& state,
                            const char* preferred = nullptr) {
    if (state.thread_index() != 0) return;
    const auto& base = detail::hist_baseline();
    tamp::obs::hist_sample best;  // delta with the most samples
    tamp::obs::hist_sample pref;  // delta for `preferred`, if it moved
    for (const auto& h : tamp::obs::hist_snapshot()) {
        tamp::obs::hist_sample delta = h;
        if (const auto it = base.find(h.name); it != base.end()) {
            delta.count -= it->second.count;
            for (std::size_t i = 0; i < delta.counts.size(); ++i) {
                delta.counts[i] -= it->second.counts[i];
            }
        }
        if (delta.count == 0) continue;
        if (preferred != nullptr && delta.name != nullptr &&
            std::string(delta.name) == preferred) {
            pref = delta;
        }
        if (delta.count > best.count) best = std::move(delta);
    }
    const tamp::obs::hist_sample& chosen = pref.count != 0 ? pref : best;
    if (chosen.count == 0) return;  // stats off, or nothing recorded
    const tamp::obs::hist_percentiles p =
        tamp::obs::extract_percentiles(chosen);
    // Mark runs whose percentiles came from the benchmark's own declared
    // op-latency timer: those are a stable series the regression gate may
    // compare across runs.  Fallback-mode percentiles (largest mover —
    // often an amortized maintenance path like a hazard scan, and not
    // necessarily the *same* histogram in both runs) are attribution
    // diagnostics, and bench_report.py reports but does not gate them.
    if (&chosen == &pref) state.counters["tamp.lat_primary"] = 1.0;
    state.counters["tamp.p50"] = static_cast<double>(p.p50);
    state.counters["tamp.p90"] = static_cast<double>(p.p90);
    state.counters["tamp.p99"] = static_cast<double>(p.p99);
    state.counters["tamp.p999"] = static_cast<double>(p.p999);
    state.counters["tamp.pmax"] = static_cast<double>(p.max);
    state.counters["tamp.lat_samples"] = static_cast<double>(p.count);
}

}  // namespace tamp_bench

#define TAMP_BENCH_THREADS(name) \
    BENCHMARK(name)->Apply(tamp_bench::thread_ladder)
