// bench_sort — §12.7–§12.8: parallel sorting throughput.  Series:
// std::sort (sequential baseline), the bitonic sorting network, and
// sample sort, over uniform-random ints at several sizes and thread
// counts.  The book's shape: sample sort approaches p-fold speedup on p
// processors; the bitonic network pays O(log² n) phases but has no data
// dependence.  (On this 1-CPU host the parallel sorts measure their
// coordination overhead; sample sort's should be far smaller.)

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "bench_util.hpp"
#include "tamp/counting/sorting.hpp"

namespace {

std::vector<int> random_ints(std::size_t n) {
    std::vector<int> v(n);
    tamp::XorShift64 rng(12345);
    for (auto& x : v) x = static_cast<int>(rng.next() % 1000000);
    return v;
}

void BM_StdSort(benchmark::State& state) {
    const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        auto v = base;
        std::sort(v.begin(), v.end());
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StdSort)->Arg(1 << 12)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

void BM_BitonicSort(benchmark::State& state) {
    const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
    const auto threads = static_cast<std::size_t>(state.range(1));
    for (auto _ : state) {
        auto v = base;
        tamp::parallel_bitonic_sort(v, threads);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BitonicSort)
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 2})
    ->Args({1 << 12, 4})
    ->Args({1 << 16, 2})
    ->Unit(benchmark::kMicrosecond);

void BM_SampleSort(benchmark::State& state) {
    const auto base = random_ints(static_cast<std::size_t>(state.range(0)));
    const auto threads = static_cast<std::size_t>(state.range(1));
    for (auto _ : state) {
        auto v = base;
        tamp::parallel_sample_sort(v, threads);
        benchmark::DoNotOptimize(v.data());
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SampleSort)
    ->Args({1 << 12, 1})
    ->Args({1 << 12, 2})
    ->Args({1 << 12, 4})
    ->Args({1 << 16, 2})
    ->Args({1 << 16, 4})
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
