// bench_hash — experiment E9 (Chapter 13): hash-set throughput, resizing
// enabled, under the read-heavy (90/9/1) and update-heavy (34/33/33)
// mixes over a key range large enough to force several resizes.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/hash/hash.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

constexpr int kKeyRange = 4096;

template <typename Set>
void hash_mix(benchmark::State& state, int contains_pct, int add_pct) {
    Shared<Set>::setup(state);
    if (state.thread_index() == 0) {
        for (int v = 0; v < kKeyRange; v += 2) Shared<Set>::instance->add(v);
    }
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Set& set = *Shared<Set>::instance;
        const int v = static_cast<int>(rng.next_below(kKeyRange));
        const int op = static_cast<int>(rng.next_below(100));
        bool r;
        if (op < contains_pct) {
            r = set.contains(v);
        } else if (op < contains_pct + add_pct) {
            r = set.add(v);
        } else {
            r = set.remove(v);
        }
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Set>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_CoarseHash_Read(benchmark::State& s) {
    hash_mix<CoarseHashSet<int>>(s, 90, 9);
}
void BM_StripedHash_Read(benchmark::State& s) {
    hash_mix<StripedHashSet<int>>(s, 90, 9);
}
void BM_RefinableHash_Read(benchmark::State& s) {
    hash_mix<RefinableHashSet<int>>(s, 90, 9);
}
void BM_SplitOrdered_Read(benchmark::State& s) {
    hash_mix<SplitOrderedHashSet<int>>(s, 90, 9);
}
void BM_Cuckoo_Read(benchmark::State& s) {
    hash_mix<StripedCuckooHashSet<int>>(s, 90, 9);
}

void BM_CoarseHash_Update(benchmark::State& s) {
    hash_mix<CoarseHashSet<int>>(s, 34, 33);
}
void BM_StripedHash_Update(benchmark::State& s) {
    hash_mix<StripedHashSet<int>>(s, 34, 33);
}
void BM_RefinableHash_Update(benchmark::State& s) {
    hash_mix<RefinableHashSet<int>>(s, 34, 33);
}
void BM_SplitOrdered_Update(benchmark::State& s) {
    hash_mix<SplitOrderedHashSet<int>>(s, 34, 33);
}
void BM_Cuckoo_Update(benchmark::State& s) {
    hash_mix<StripedCuckooHashSet<int>>(s, 34, 33);
}

TAMP_BENCH_THREADS(BM_CoarseHash_Read);
TAMP_BENCH_THREADS(BM_StripedHash_Read);
TAMP_BENCH_THREADS(BM_RefinableHash_Read);
TAMP_BENCH_THREADS(BM_SplitOrdered_Read);
TAMP_BENCH_THREADS(BM_Cuckoo_Read);
TAMP_BENCH_THREADS(BM_CoarseHash_Update);
TAMP_BENCH_THREADS(BM_StripedHash_Update);
TAMP_BENCH_THREADS(BM_RefinableHash_Update);
TAMP_BENCH_THREADS(BM_SplitOrdered_Update);
TAMP_BENCH_THREADS(BM_Cuckoo_Update);

}  // namespace

BENCHMARK_MAIN();
