// bench_locks — experiments E1–E3 (book Figs. 7.4, 7.8, 7.10): spin-lock
// throughput under contention.
//
// Workload: each thread repeatedly acquires the shared lock, bumps a
// shared counter (a tiny critical section — the regime where lock overhead
// dominates), and releases.  The book's curves plot time vs threads for
// TAS vs TTAS (7.4), TTAS vs backoff (7.8), and backoff vs the queue locks
// ALock/CLH/MCS (7.10); this binary emits all of those series plus
// std::mutex and the timeout-capable locks for reference.

#include <benchmark/benchmark.h>

#include <mutex>

#include "bench_util.hpp"
#include "tamp/spin/spin.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

struct Protected {
    long counter = 0;
};

template <typename Lock>
void lock_loop(benchmark::State& state) {
    Shared<Lock>::setup(state);
    Shared<Protected>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        // Whole-op (acquire + critical section + release) latency, so
        // every series — std::mutex included — gets a tail distribution;
        // the spin locks additionally record spin.acquire_ns internally.
        obs::scoped_timer<obs::ev::bench_op_ns> op_latency;
        Lock& lock = *Shared<Lock>::instance;
        lock.lock();
        benchmark::DoNotOptimize(++Shared<Protected>::instance->counter);
        lock.unlock();
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Protected>::teardown(state);
    Shared<Lock>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state, "bench.op_ns");
}

void BM_TASLock(benchmark::State& s) { lock_loop<TASLock>(s); }
void BM_TTASLock(benchmark::State& s) { lock_loop<TTASLock>(s); }
void BM_BackoffLock(benchmark::State& s) { lock_loop<BackoffLock>(s); }
void BM_ALock(benchmark::State& s) { lock_loop<ALock>(s); }
void BM_CLHLock(benchmark::State& s) { lock_loop<CLHLock>(s); }
void BM_MCSLock(benchmark::State& s) { lock_loop<MCSLock>(s); }
void BM_CompositeLock(benchmark::State& s) { lock_loop<CompositeLock>(s); }
void BM_HBOLock(benchmark::State& s) { lock_loop<HBOLock>(s); }
void BM_TOLock(benchmark::State& s) { lock_loop<TOLock>(s); }
void BM_HCLHLock(benchmark::State& s) { lock_loop<HCLHLock>(s); }
void BM_StdMutex(benchmark::State& s) { lock_loop<std::mutex>(s); }

TAMP_BENCH_THREADS(BM_TASLock);
TAMP_BENCH_THREADS(BM_TTASLock);
TAMP_BENCH_THREADS(BM_BackoffLock);
TAMP_BENCH_THREADS(BM_ALock);
TAMP_BENCH_THREADS(BM_CLHLock);
TAMP_BENCH_THREADS(BM_MCSLock);
TAMP_BENCH_THREADS(BM_CompositeLock);
TAMP_BENCH_THREADS(BM_HBOLock);
TAMP_BENCH_THREADS(BM_TOLock);
TAMP_BENCH_THREADS(BM_HCLHLock);
TAMP_BENCH_THREADS(BM_StdMutex);

}  // namespace

BENCHMARK_MAIN();
