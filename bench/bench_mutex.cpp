// bench_mutex — experiment E4: the Chapter 2 classic read/write-register
// locks.  The book's point is qualitative (Bakery and Filter cost grows
// with n even uncontended; Peterson is cheap but two-thread-only); this
// binary measures acquisition+release cost at 1/2/4/8 threads, with each
// thread using its registry slot as its lock slot.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/mutex/mutex.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

struct Protected {
    long counter = 0;
};

// NOTE: the shared lock may only be dereferenced *inside* the iteration
// loop — the benchmark library's start barrier is what publishes thread
// 0's setup to the other threads.
template <typename Lock>
void slotted_lock_loop(benchmark::State& state) {
    const auto me = static_cast<std::size_t>(state.thread_index());
    Shared<Protected>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Lock& lock = *Shared<Lock>::instance;
        lock.lock(me);
        benchmark::DoNotOptimize(++Shared<Protected>::instance->counter);
        lock.unlock(me);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Protected>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_Peterson(benchmark::State& state) {
    Shared<PetersonLock>::setup(state);
    slotted_lock_loop<PetersonLock>(state);
    Shared<PetersonLock>::teardown(state);
}
BENCHMARK(BM_Peterson)->Threads(1)->Threads(2)->UseRealTime();

void BM_Filter(benchmark::State& state) {
    Shared<FilterLock>::setup(state, static_cast<std::size_t>(
                                         state.threads()));
    slotted_lock_loop<FilterLock>(state);
    Shared<FilterLock>::teardown(state);
}
TAMP_BENCH_THREADS(BM_Filter);

void BM_Bakery(benchmark::State& state) {
    Shared<BakeryLock>::setup(state, static_cast<std::size_t>(
                                         state.threads()));
    slotted_lock_loop<BakeryLock>(state);
    Shared<BakeryLock>::teardown(state);
}
TAMP_BENCH_THREADS(BM_Bakery);

void BM_Tournament(benchmark::State& state) {
    Shared<TournamentLock>::setup(state, static_cast<std::size_t>(
                                             state.threads()));
    slotted_lock_loop<TournamentLock>(state);
    Shared<TournamentLock>::teardown(state);
}
TAMP_BENCH_THREADS(BM_Tournament);

// Wide-capacity solo acquisitions: the book's observation that Filter and
// Bakery pay O(n) per acquisition *even alone*, while the tournament pays
// O(log n).
template <typename Lock>
void solo_wide(benchmark::State& state) {
    Lock lock(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        lock.lock(0);
        lock.unlock(0);
    }
    state.SetItemsProcessed(state.iterations());
}
void BM_FilterSoloWide(benchmark::State& s) { solo_wide<FilterLock>(s); }
void BM_BakerySoloWide(benchmark::State& s) { solo_wide<BakeryLock>(s); }
void BM_TournamentSoloWide(benchmark::State& s) {
    solo_wide<TournamentLock>(s);
}
BENCHMARK(BM_FilterSoloWide)->Arg(2)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_BakerySoloWide)->Arg(2)->Arg(8)->Arg(32)->Arg(128);
BENCHMARK(BM_TournamentSoloWide)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace

BENCHMARK_MAIN();
