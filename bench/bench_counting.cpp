// bench_counting — experiment E8 (Chapter 12): shared-counter throughput.
//
// Every thread hammers getAndIncrement.  Series: the single fetch-and-add
// word (baseline), the software combining tree, the bitonic and periodic
// counting networks (width 4), and the diffracting tree.  The book's
// qualitative claim: the distributed counters overtake the single hot
// word once enough threads fight for it; at low thread counts they lose
// badly (tree/network latency is pure overhead for one thread).

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/counting/counting.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

template <typename C, typename... Args>
void counter_loop(benchmark::State& state, Args&&... args) {
    Shared<C>::setup(state, std::forward<Args>(args)...);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Shared<C>::instance->get_and_increment());
    }
    state.SetItemsProcessed(state.iterations());
    Shared<C>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_SingleCounter(benchmark::State& s) { counter_loop<SingleCounter>(s); }
void BM_CombiningTree(benchmark::State& s) {
    counter_loop<CombiningTree>(s, std::size_t{16});
}
void BM_BitonicCounter(benchmark::State& s) {
    counter_loop<BitonicCounter>(s, std::size_t{4});
}
void BM_PeriodicCounter(benchmark::State& s) {
    counter_loop<PeriodicCounter>(s, std::size_t{4});
}
void BM_DiffractingCounter(benchmark::State& s) {
    counter_loop<DiffractingTreeCounter>(s, std::size_t{4});
}

TAMP_BENCH_THREADS(BM_SingleCounter);
TAMP_BENCH_THREADS(BM_CombiningTree);
TAMP_BENCH_THREADS(BM_BitonicCounter);
TAMP_BENCH_THREADS(BM_PeriodicCounter);
TAMP_BENCH_THREADS(BM_DiffractingCounter);

}  // namespace

BENCHMARK_MAIN();
