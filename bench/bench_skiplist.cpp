// bench_skiplist — experiment E10 (Chapter 14): lazy vs lock-free
// skiplists at a large key range (the regime skiplists exist for), under
// the two canonical mixes.  The list-based sets collapse here (O(n)
// traversals); the skiplists' O(log n) search is the point.

#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "tamp/skiplist/skiplist.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

constexpr int kKeyRange = 64 * 1024;

template <typename Set>
void skip_mix(benchmark::State& state, int contains_pct, int add_pct) {
    Shared<Set>::setup(state);
    if (state.thread_index() == 0) {
        for (int v = 0; v < kKeyRange; v += 2) Shared<Set>::instance->add(v);
    }
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Set& set = *Shared<Set>::instance;
        const int v = static_cast<int>(rng.next_below(kKeyRange));
        const int op = static_cast<int>(rng.next_below(100));
        bool r;
        if (op < contains_pct) {
            r = set.contains(v);
        } else if (op < contains_pct + add_pct) {
            r = set.add(v);
        } else {
            r = set.remove(v);
        }
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Set>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_LazySkip_Read(benchmark::State& s) {
    skip_mix<LazySkipList<int>>(s, 90, 9);
}
void BM_LockFreeSkip_Read(benchmark::State& s) {
    skip_mix<LockFreeSkipList<int>>(s, 90, 9);
}
void BM_LazySkip_Update(benchmark::State& s) {
    skip_mix<LazySkipList<int>>(s, 34, 33);
}
void BM_LockFreeSkip_Update(benchmark::State& s) {
    skip_mix<LockFreeSkipList<int>>(s, 34, 33);
}

TAMP_BENCH_THREADS(BM_LazySkip_Read);
TAMP_BENCH_THREADS(BM_LockFreeSkip_Read);
TAMP_BENCH_THREADS(BM_LazySkip_Update);
TAMP_BENCH_THREADS(BM_LockFreeSkip_Update);

}  // namespace

BENCHMARK_MAIN();
