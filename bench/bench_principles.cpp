// bench_principles — ablation over the "Principles" half (Chapters 4–6):
// what do the register constructions, snapshots, consensus objects, and
// universal constructions cost?  The book proves these correct and
// (mostly) leaves performance to the imagination; measuring them makes
// the cost of universality concrete — the wait-free universal counter is
// orders of magnitude slower than the CAS counter it simulates, which is
// exactly why the practice half of the book exists.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.hpp"
#include "tamp/consensus/consensus.hpp"
#include "tamp/consensus/universal.hpp"
#include "tamp/registers/registers.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

// ---------------------------------------------------------- registers

void BM_HardwareRegisterRead(benchmark::State& state) {
    AtomicRegister<std::int64_t> r(1);
    for (auto _ : state) benchmark::DoNotOptimize(r.read());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HardwareRegisterRead);

void BM_AtomicMRSWRead(benchmark::State& state) {
    const auto readers = static_cast<std::size_t>(state.range(0));
    AtomicMRSW<> r(readers, 1);
    for (auto _ : state) benchmark::DoNotOptimize(r.read(0));
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicMRSWRead)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

void BM_AtomicMRMWWrite(benchmark::State& state) {
    const auto writers = static_cast<std::size_t>(state.range(0));
    AtomicMRMW<> r(writers, 0);
    for (auto _ : state) r.write(0, 5);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicMRMWWrite)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

// ---------------------------------------------------------- snapshots

void BM_SimpleSnapshotScan(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    SimpleSnapshot<long> snap(n, 0);
    for (auto _ : state) benchmark::DoNotOptimize(snap.scan());
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimpleSnapshotScan)->Arg(4)->Arg(16);

void BM_WaitFreeSnapshotUpdate(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    WaitFreeSnapshot<long> snap(n, 0);
    long v = 0;
    for (auto _ : state) snap.update(0, ++v);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WaitFreeSnapshotUpdate)->Arg(4)->Arg(16);

// ---------------------------------------------------------- consensus

void BM_CASConsensusDecide(benchmark::State& state) {
    // Single-shot objects: construction is part of the measured cost, as
    // it would be in any per-operation usage (cf. universal log nodes).
    for (auto _ : state) {
        CASConsensus<int> c(8);
        benchmark::DoNotOptimize(c.decide(0, 42));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CASConsensusDecide);

// ---------------------------------------------------------- universal

struct SeqCounter {
    long value = 0;
    long apply(const long& d) {
        const long old = value;
        value += d;
        return old;
    }
};

void BM_CASCounterBaseline(benchmark::State& state) {
    Shared<std::atomic<long>>::setup(state, 0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            Shared<std::atomic<long>>::instance->fetch_add(1));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<std::atomic<long>>::teardown(state);
}

template <typename U>
void universal_counter(benchmark::State& state) {
    Shared<U>::setup(state, std::size_t{8});
    const auto me = static_cast<std::size_t>(state.thread_index());
    for (auto _ : state) {
        benchmark::DoNotOptimize(Shared<U>::instance->apply(me, 1));
    }
    state.SetItemsProcessed(state.iterations());
    Shared<U>::teardown(state);
}
void BM_LockFreeUniversalCounter(benchmark::State& s) {
    universal_counter<LockFreeUniversal<SeqCounter, long, long>>(s);
}
void BM_WaitFreeUniversalCounter(benchmark::State& s) {
    universal_counter<WaitFreeUniversal<SeqCounter, long, long>>(s);
}

BENCHMARK(BM_CASCounterBaseline)->Threads(1)->Threads(2)->UseRealTime();
// NOTE: the universal constructions replay the whole log per apply —
// keep iteration budgets small or quadratic replay dominates the run.
BENCHMARK(BM_LockFreeUniversalCounter)
    ->Threads(1)
    ->Threads(2)
    ->UseRealTime()
    ->Iterations(2000);
BENCHMARK(BM_WaitFreeUniversalCounter)
    ->Threads(1)
    ->Threads(2)
    ->UseRealTime()
    ->Iterations(2000);

}  // namespace

BENCHMARK_MAIN();
