// bench_reclaim — ablation for the reclamation substrate (DESIGN.md's
// substitution table): what do hazard pointers, epochs and QSBR cost
// relative to no protection at all?
//
//  * read-side: protect-and-read a stable pointer, the 3-way SMR ladder
//    (HP pays a fence per pointer; EBR pays a pin — two TLS writes — per
//    operation; QSBR's read side is TLS arithmetic only, the closest any
//    scheme gets to the GC'd-Java baseline the book's code implicitly
//    enjoys);
//  * churn: allocate/retire cycles through each domain.

#include <benchmark/benchmark.h>

#include <atomic>

#include "bench_util.hpp"
#include "tamp/reclaim/reclaim.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

struct Box {
    long payload = 7;
};

struct SharedBox {
    std::atomic<Box*> ptr{new Box()};
    ~SharedBox() { delete ptr.load(); }
};

void BM_ReadUnprotected(benchmark::State& state) {
    Shared<SharedBox>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Box* b = Shared<SharedBox>::instance->ptr.load(
            std::memory_order_acquire);
        benchmark::DoNotOptimize(b->payload);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SharedBox>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_ReadHazardProtected(benchmark::State& state) {
    Shared<SharedBox>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        HazardSlot<Box> hp;
        Box* b = hp.protect(Shared<SharedBox>::instance->ptr);
        benchmark::DoNotOptimize(b->payload);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SharedBox>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_ReadHazardSlotReused(benchmark::State& state) {
    // Amortize the slot claim across reads — the pattern real structures
    // use (one slot per traversal, many protects).
    Shared<SharedBox>::setup(state);
    HazardSlot<Box> hp;
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Box* b = hp.protect(Shared<SharedBox>::instance->ptr);
        benchmark::DoNotOptimize(b->payload);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SharedBox>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_ReadEpochPinned(benchmark::State& state) {
    Shared<SharedBox>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        EpochGuard g;
        Box* b = Shared<SharedBox>::instance->ptr.load(
            std::memory_order_acquire);
        benchmark::DoNotOptimize(b->payload);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SharedBox>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_ReadQsbr(benchmark::State& state) {
    // The QSBR read side: no per-pointer publication, no pin — the guard
    // is thread-local nesting arithmetic, with a rate-limited quiescence
    // report at the op boundary.  tamp.qsbr.quiescences counts how often
    // that report actually fires.
    Shared<SharedBox>::setup(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        QsbrReadGuard g;
        Box* b = Shared<SharedBox>::instance->ptr.load(
            std::memory_order_acquire);
        benchmark::DoNotOptimize(b->payload);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<SharedBox>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

TAMP_BENCH_THREADS(BM_ReadUnprotected);
TAMP_BENCH_THREADS(BM_ReadHazardProtected);
TAMP_BENCH_THREADS(BM_ReadHazardSlotReused);
TAMP_BENCH_THREADS(BM_ReadEpochPinned);
TAMP_BENCH_THREADS(BM_ReadQsbr);

void BM_ChurnHazardRetire(benchmark::State& state) {
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        hazard_retire(new Box());
    }
    tamp_bench::quiesce(state);
    if (state.thread_index() == 0) HazardDomain::global().drain();
    state.SetItemsProcessed(state.iterations());
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}
void BM_ChurnEpochRetire(benchmark::State& state) {
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        EpochGuard g;
        epoch_retire(new Box());
    }
    tamp_bench::quiesce(state);
    if (state.thread_index() == 0) EpochDomain::global().drain();
    state.SetItemsProcessed(state.iterations());
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}
void BM_ChurnQsbrRetire(benchmark::State& state) {
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        // The guard's exit is the quiescence source, exactly as in a
        // templated structure; retire triggers collects at threshold.
        QsbrReadGuard g;
        qsbr_retire(new Box());
    }
    tamp_bench::quiesce(state);
    if (state.thread_index() == 0) QsbrDomain::global().drain();
    state.SetItemsProcessed(state.iterations());
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}
void BM_ChurnPlainDelete(benchmark::State& state) {
    for (auto _ : state) {
        Box* b = new Box();
        benchmark::DoNotOptimize(b);  // keep the allocation honest
        delete b;
    }
    state.SetItemsProcessed(state.iterations());
}
TAMP_BENCH_THREADS(BM_ChurnHazardRetire);
TAMP_BENCH_THREADS(BM_ChurnEpochRetire);
TAMP_BENCH_THREADS(BM_ChurnQsbrRetire);
TAMP_BENCH_THREADS(BM_ChurnPlainDelete);

}  // namespace

BENCHMARK_MAIN();
