// bench_stm — experiment E14 (Chapter 18): TL2-style STM vs the global
// lock on the bank-transfer workload, sweeping the account count.  Many
// accounts ⇒ mostly disjoint transactions ⇒ the STM's fine-grained
// versioned locks should pull ahead of the single lock under concurrency;
// few accounts ⇒ constant conflicts ⇒ the global lock's simplicity wins.

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hpp"
#include "tamp/stm/ofree_stm.hpp"
#include "tamp/stm/stm.hpp"

namespace {

using namespace tamp;
using tamp_bench::Shared;

struct Bank {
    std::vector<TVar<long>> accounts;
    explicit Bank(std::size_t n) {
        accounts.reserve(n);
        for (std::size_t i = 0; i < n; ++i) accounts.emplace_back(1000);
    }
};

void BM_Tl2Transfers(benchmark::State& state) {
    const auto n_accounts = static_cast<std::size_t>(state.range(0));
    Shared<Bank>::setup(state, n_accounts);
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Bank& bank = *Shared<Bank>::instance;
        const auto from = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        auto to = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        if (to == from) to = (to + 1) % n_accounts;
        atomically([&](Transaction& tx) {
            const long f = tx.read(bank.accounts[from]);
            const long t = tx.read(bank.accounts[to]);
            tx.write(bank.accounts[from], f - 1);
            tx.write(bank.accounts[to], t + 1);
        });
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Bank>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

void BM_GlobalLockTransfers(benchmark::State& state) {
    const auto n_accounts = static_cast<std::size_t>(state.range(0));
    Shared<Bank>::setup(state, n_accounts);
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Bank& bank = *Shared<Bank>::instance;
        const auto from = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        auto to = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        if (to == from) to = (to + 1) % n_accounts;
        GlobalLockSTM::atomically([&](GlobalLockSTM::DirectTx& tx) {
            const long f = tx.read(bank.accounts[from]);
            const long t = tx.read(bank.accounts[to]);
            tx.write(bank.accounts[from], f - 1);
            tx.write(bank.accounts[to], t + 1);
        });
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Bank>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

struct OFreeBank {
    std::vector<OFreeTVar<long>> accounts;
    explicit OFreeBank(std::size_t n) : accounts(n) {}
};

void BM_OFreeTransfers(benchmark::State& state) {
    const auto n_accounts = static_cast<std::size_t>(state.range(0));
    Shared<OFreeBank>::setup(state, n_accounts);
    auto rng = tamp_bench::bench_rng(state);
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        OFreeBank& bank = *Shared<OFreeBank>::instance;
        const auto from = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        auto to = rng.next_below(static_cast<std::uint32_t>(n_accounts));
        if (to == from) to = (to + 1) % n_accounts;
        o_atomically([&](OFreeTransaction& tx) {
            const long f = tx.read(bank.accounts[from]);
            const long t = tx.read(bank.accounts[to]);
            tx.write(bank.accounts[from], f - 1);
            tx.write(bank.accounts[to], t + 1);
        });
    }
    state.SetItemsProcessed(state.iterations());
    Shared<OFreeBank>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}

#define TAMP_STM_CASES(name)                                             \
    BENCHMARK(name)                                                      \
        ->Args({4})                                                      \
        ->Args({1024})                                                   \
        ->Threads(1)                                                     \
        ->Threads(2)                                                     \
        ->Threads(4)                                                     \
        ->UseRealTime()

TAMP_STM_CASES(BM_Tl2Transfers);
TAMP_STM_CASES(BM_GlobalLockTransfers);
TAMP_STM_CASES(BM_OFreeTransfers);

// Read-only scans: TL2's invisible readers vs the lock (which serializes
// even readers).
void BM_Tl2ReadOnlySum(benchmark::State& state) {
    Shared<Bank>::setup(state, std::size_t{256});
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Bank& bank = *Shared<Bank>::instance;
        const long total = atomically([&](Transaction& tx) {
            long sum = 0;
            for (std::size_t i = 0; i < 64; ++i) {
                sum += tx.read(bank.accounts[i]);
            }
            return sum;
        });
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Bank>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}
void BM_GlobalLockReadOnlySum(benchmark::State& state) {
    Shared<Bank>::setup(state, std::size_t{256});
    tamp_bench::counters_begin(state);
    tamp_bench::latency_begin(state);
    for (auto _ : state) {
        Bank& bank = *Shared<Bank>::instance;
        const long total =
            GlobalLockSTM::atomically([&](GlobalLockSTM::DirectTx& tx) {
                long sum = 0;
                for (std::size_t i = 0; i < 64; ++i) {
                    sum += tx.read(bank.accounts[i]);
                }
                return sum;
            });
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations());
    Shared<Bank>::teardown(state);
    tamp_bench::counters_publish(state);
    tamp_bench::latency_publish(state);
}
BENCHMARK(BM_Tl2ReadOnlySum)->Threads(1)->Threads(4)->UseRealTime();
BENCHMARK(BM_GlobalLockReadOnlySum)->Threads(1)->Threads(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
